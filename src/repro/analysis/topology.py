"""Stream-topology analysis over ``runtime.ops`` thread factories.

Builds the producer/consumer graph of a workload *without running it*:
which threads read, write and close which bounded streams.  The walk is
interprocedural over the factory source (``yield Call(fn, ...)``,
``yield from fn(...)`` and ``yield Spawn(...)`` are followed into the
callee with the caller's argument bindings), with a may-binding
environment so patterns like ``stream = work_streams[i % k]`` and
``for stream in work_streams`` resolve to every member of the bound
stream list.

Verdicts:

* a stream some thread reads that **no** thread ever writes or closes
  is a *guaranteed* deadlock (the reader blocks forever; the kernel's
  watchdog raises ``DeadlockError`` at run time) — an error finding,
  provided the walk resolved every stream operation;
* cycles through bounded streams (thread → stream it writes → thread
  that reads it → ...) are *candidate* deadlocks: whether they bite
  depends on buffer capacities and data volume (§5.1), so they are
  reported in the report ``meta`` — or as warnings in pedantic mode —
  and cross-checked dynamically by the differential suite;
* written-never-read and read-never-closed streams are likewise
  pedantic-mode warnings (a reader that stops before end-of-stream is
  legitimate, e.g. the fork/join parent collecting a known item count).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import (ERROR, WARNING, AnalysisReport, Finding)
from repro.runtime import ops as _ops
from repro.runtime.streams import Stream

#: op classes that touch a stream (first constructor argument)
_READ_OPS = (_ops.Read, _ops.ReadLine)
_WRITE_OPS = (_ops.Write,)
_CLOSE_OPS = (_ops.CloseStream,)

#: interprocedural recursion limits (factories are shallow in practice)
_MAX_DEPTH = 24


class _Unresolved:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<unresolved>"


UNRESOLVED = _Unresolved()


class _Box:
    """Identity-hashable holder for unhashable values (stream lists)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __hash__(self) -> int:
        return id(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Box) and other.value is self.value


def _box(value: Any) -> Any:
    try:
        hash(value)
    except TypeError:
        return _Box(value)
    return value


def _unbox(value: Any) -> Any:
    return value.value if isinstance(value, _Box) else value


class ThreadNode:
    """One (possibly spawned) thread and the streams it touches."""

    def __init__(self, name: str, factory_name: str):
        self.name = name
        self.factory_name = factory_name
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()
        self.closes: Set[int] = set()
        #: some stream operation or call target could not be resolved
        self.partial = False


class StreamNode:
    """One stream and the thread names on each side of it."""

    def __init__(self, stream: Stream):
        self.stream = stream
        self.name = stream.name or ("stream@%x" % id(stream))
        self.capacity = stream.capacity
        self.readers: Set[str] = set()
        self.writers: Set[str] = set()
        self.closers: Set[str] = set()


class TopologyGraph:
    """The full producer/consumer graph of a workload."""

    def __init__(self) -> None:
        self.threads: List[ThreadNode] = []
        self.streams: Dict[int, StreamNode] = {}

    @property
    def partial(self) -> bool:
        return any(t.partial for t in self.threads)

    def _stream_node(self, stream: Stream) -> StreamNode:
        node = self.streams.get(id(stream))
        if node is None:
            node = StreamNode(stream)
            self.streams[id(stream)] = node
        return node

    def cycles(self) -> List[List[str]]:
        """Cycles in the bipartite thread → stream → thread graph.

        Edges: a thread points at every stream it writes; a stream
        points at every thread that reads it.  Returned as alternating
        ``[thread, stream, thread, ..., thread]`` name lists (the first
        and last name coincide).
        """
        succ: Dict[str, List[str]] = {}
        for t in self.threads:
            key = "t:" + t.name
            succ[key] = ["s:%d" % sid for sid in sorted(t.writes)]
        for sid, s in self.streams.items():
            succ["s:%d" % sid] = sorted("t:" + r for r in s.readers)

        found: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(succ):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            visited: Set[str] = set()
            while stack:
                node, path = stack.pop()
                for nxt in succ.get(node, ()):
                    if nxt == start:
                        cycle = path + [start]
                        key = tuple(sorted(set(cycle)))
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            found.append(self._render_cycle(cycle))
                    elif nxt not in visited and nxt not in path:
                        visited.add(nxt)
                        stack.append((nxt, path + [nxt]))
        return found

    def _render_cycle(self, cycle: Sequence[str]) -> List[str]:
        out = []
        for node in cycle:
            if node.startswith("s:"):
                out.append(self.streams[int(node[2:])].name)
            else:
                out.append(node[2:])
        return out

    def summary(self) -> Dict[str, Any]:
        return {
            "threads": [
                {"name": t.name, "factory": t.factory_name,
                 "reads": sorted(self.streams[s].name for s in t.reads),
                 "writes": sorted(self.streams[s].name for s in t.writes),
                 "closes": sorted(self.streams[s].name for s in t.closes),
                 "partial": t.partial}
                for t in self.threads],
            "streams": [
                {"name": s.name, "capacity": s.capacity,
                 "readers": sorted(s.readers), "writers": sorted(s.writers),
                 "closers": sorted(s.closers)}
                for __, s in sorted(self.streams.items())],
            "cycles": self.cycles(),
            "partial": self.partial,
        }


# -- the interprocedural factory walk ------------------------------------

_SOURCE_CACHE: Dict[Any, Optional[ast.FunctionDef]] = {}


def _function_ast(func) -> Optional[ast.FunctionDef]:
    if func in _SOURCE_CACHE:
        return _SOURCE_CACHE[func]
    node: Optional[ast.FunctionDef] = None
    try:
        source = textwrap.dedent(inspect.getsource(func))
        module = ast.parse(source)
        for stmt in ast.walk(module):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node = stmt  # outermost definition comes first
                break
    except (OSError, TypeError, SyntaxError, IndentationError):
        node = None
    _SOURCE_CACHE[func] = node
    return node


def _bind_args(func, argsets: Sequence[Set[Any]]) -> Dict[str, Set[Any]]:
    """Map parameter names to abstract value sets, defaults included."""
    env: Dict[str, Set[Any]] = {}
    try:
        params = list(inspect.signature(func).parameters.values())
    except (ValueError, TypeError):
        return env
    i = 0
    for param in params:
        if param.kind == param.VAR_POSITIONAL:
            env[param.name] = {tuple()}
            i = len(argsets)
        elif i < len(argsets):
            env[param.name] = set(argsets[i])
            i += 1
        elif param.default is not param.empty:
            env[param.name] = {_box(param.default)}
        else:
            env[param.name] = {UNRESOLVED}
    return env


class _Walker:
    """Walks one thread's factory (and its callees) into the graph."""

    def __init__(self, graph: TopologyGraph, thread: ThreadNode):
        self.graph = graph
        self.thread = thread
        self._memo: Set[Tuple[int, Tuple[Any, ...]]] = set()

    # -- value resolution --------------------------------------------------

    def _globals_of(self, func) -> Dict[str, Any]:
        scope = dict(getattr(func, "__globals__", {}) or {})
        try:
            closure = inspect.getclosurevars(func)
            scope.update(closure.nonlocals)
        except (TypeError, ValueError):
            pass
        return scope

    def _resolve(self, expr: ast.expr, env: Dict[str, Set[Any]],
                 scope: Dict[str, Any]) -> Set[Any]:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return set(env[expr.id])
            if expr.id in scope:
                return {_box(scope[expr.id])}
            return {UNRESOLVED}
        if isinstance(expr, ast.Constant):
            return {_box(expr.value)}
        if isinstance(expr, ast.Subscript):
            values = self._resolve(expr.value, env, scope)
            out: Set[Any] = set()
            for value in values:
                value = _unbox(value)
                if isinstance(value, (list, tuple)):
                    out.update(_box(element) for element in value)
                else:
                    out.add(UNRESOLVED)
            return out
        if isinstance(expr, (ast.List, ast.Tuple)):
            out = set()
            for element in expr.elts:
                out.update(self._resolve(element, env, scope))
            return out
        return {UNRESOLVED}

    def _streams_of(self, expr: ast.expr, env: Dict[str, Set[Any]],
                    scope: Dict[str, Any]) -> List[Stream]:
        values = [_unbox(v) for v in self._resolve(expr, env, scope)]
        streams = [v for v in values if isinstance(v, Stream)]
        if any(v is UNRESOLVED for v in values) or not streams:
            self.thread.partial = True
        return streams

    # -- the walk ----------------------------------------------------------

    def walk(self, func, argsets: Sequence[Set[Any]], depth: int = 0) -> None:
        if depth > _MAX_DEPTH:
            self.thread.partial = True
            return
        key = (id(func), tuple(
            frozenset(id(v) for v in argset) for argset in argsets))
        if key in self._memo:
            return
        self._memo.add(key)
        node = _function_ast(func)
        if node is None:
            self.thread.partial = True
            return
        env = _bind_args(func, argsets)
        scope = self._globals_of(func)
        # two passes: may-bindings introduced late (loop-carried names)
        # are visible to stream operations earlier in the source
        for __ in range(2):
            for stmt in node.body:
                self._walk_stmt(stmt, env, scope, depth)

    def _walk_stmt(self, stmt: ast.stmt, env, scope, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            values = self._assigned(stmt.value, env, scope, depth)
            for target in stmt.targets:
                self._bind_target(target, values, env)
        elif isinstance(stmt, ast.AugAssign):
            self._assigned(stmt.value, env, scope, depth)
        elif isinstance(stmt, ast.For):
            iter_values = self._resolve(stmt.iter, env, scope)
            elements: Set[Any] = set()
            for value in iter_values:
                value = _unbox(value)
                if isinstance(value, (list, tuple)):
                    elements.update(_box(element) for element in value)
                else:
                    elements.add(UNRESOLVED)
            self._bind_target(stmt.target, elements, env)
            for sub in stmt.body + stmt.orelse:
                self._walk_stmt(sub, env, scope, depth)
        elif isinstance(stmt, (ast.While, ast.If)):
            body = stmt.body + stmt.orelse
            for sub in body:
                self._walk_stmt(sub, env, scope, depth)
        elif isinstance(stmt, (ast.With,)):
            for sub in stmt.body:
                self._walk_stmt(sub, env, scope, depth)
        elif isinstance(stmt, ast.Try):
            for sub in (stmt.body + stmt.orelse + stmt.finalbody
                        + [s for h in stmt.handlers for s in h.body]):
                self._walk_stmt(sub, env, scope, depth)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._assigned(stmt.value, env, scope, depth)

    def _bind_target(self, target: ast.expr, values: Set[Any], env) -> None:
        if isinstance(target, ast.Name):
            env.setdefault(target.id, set()).update(values)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, {UNRESOLVED}, env)

    def _assigned(self, expr: ast.expr, env, scope, depth: int) -> Set[Any]:
        """Visit an expression for yields; return its abstract value."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Yield) and node.value is not None:
                self._visit_yield(node.value, env, scope, depth)
            elif isinstance(node, ast.YieldFrom):
                self._visit_yield_from(node.value, env, scope, depth)
        return self._resolve(expr, env, scope)

    def _visit_yield(self, value: ast.expr, env, scope, depth: int) -> None:
        if not isinstance(value, ast.Call):
            return
        targets = [_unbox(t) for t in self._resolve(value.func, env, scope)]
        for target in targets:
            if target in _READ_OPS:
                self._record("reads", value, env, scope)
            elif target in _WRITE_OPS:
                self._record("writes", value, env, scope)
            elif target in _CLOSE_OPS:
                self._record("closes", value, env, scope)
            elif target in (_ops.Call, _ops.Spawn):
                self._follow_call(value, env, scope, depth)
            # Tick/YieldCPU/Join/FlushHint touch no stream

    def _record(self, kind: str, call: ast.Call, env, scope) -> None:
        if not call.args:
            self.thread.partial = True
            return
        side = {"reads": "readers", "writes": "writers",
                "closes": "closers"}[kind]
        for stream in self._streams_of(call.args[0], env, scope):
            node = self.graph._stream_node(stream)
            getattr(node, side).add(self.thread.name)
            getattr(self.thread, kind).add(id(stream))

    def _follow_call(self, call: ast.Call, env, scope, depth: int) -> None:
        if not call.args:
            self.thread.partial = True
            return
        callees = [_unbox(c)
                   for c in self._resolve(call.args[0], env, scope)]
        argsets = [self._resolve(arg, env, scope) for arg in call.args[1:]]
        resolved = False
        for callee in callees:
            if callable(callee) and callee is not UNRESOLVED:
                self.walk(callee, argsets, depth + 1)
                resolved = True
        if not resolved:
            self.thread.partial = True

    def _visit_yield_from(self, value: ast.expr, env, scope,
                          depth: int) -> None:
        if not isinstance(value, ast.Call):
            self.thread.partial = True
            return
        callees = [_unbox(c) for c in self._resolve(value.func, env, scope)]
        argsets = [self._resolve(arg, env, scope) for arg in value.args]
        resolved = False
        for callee in callees:
            if callable(callee) and callee is not UNRESOLVED:
                self.walk(callee, argsets, depth + 1)
                resolved = True
        if not resolved:
            self.thread.partial = True


def analyze_threads(threads: Iterable[Any]) -> TopologyGraph:
    """Build the graph from spawned threads (``.factory``/``.args``)."""
    graph = TopologyGraph()
    for thread in threads:
        name = getattr(thread, "name", "") or (
            getattr(thread.factory, "__name__", "?"))
        node = ThreadNode(name, getattr(thread.factory, "__name__", "?"))
        graph.threads.append(node)
        _Walker(graph, node).walk(
            thread.factory, [{_box(arg)} for arg in thread.args])
    return graph


def topology_findings(graph: TopologyGraph,
                      pedantic: bool = False) -> List[Finding]:
    findings: List[Finding] = []
    complete = not graph.partial
    for __, stream in sorted(graph.streams.items()):
        if stream.readers and not stream.writers and not stream.closers:
            findings.append(Finding(
                rule="stream-never-written",
                severity=ERROR if complete else WARNING,
                message="stream %r is read by %s but never written or "
                        "closed by any thread"
                        % (stream.name, ", ".join(sorted(stream.readers))),
                file=stream.name,
                hint="the reader blocks forever (DeadlockError at run "
                     "time); add a producer or close the stream"))
        elif pedantic and stream.writers and not stream.readers:
            findings.append(Finding(
                rule="stream-never-read", severity=WARNING,
                message="stream %r is written by %s but never read"
                        % (stream.name, ", ".join(sorted(stream.writers))),
                file=stream.name,
                hint="writers block once %d buffered bytes accumulate"
                     % stream.capacity))
        elif (pedantic and stream.readers and stream.writers
              and not stream.closers):
            findings.append(Finding(
                rule="stream-not-closed", severity=WARNING,
                message="stream %r is read by %s but no thread closes it"
                        % (stream.name, ", ".join(sorted(stream.readers))),
                file=stream.name,
                hint="a reader draining to end-of-stream never wakes; "
                     "yield CloseStream(...) when production ends"))
    if pedantic:
        for cycle in graph.cycles():
            findings.append(Finding(
                rule="stream-cycle", severity=WARNING,
                message="cycle through bounded streams: %s"
                        % " -> ".join(cycle),
                file=cycle[1] if len(cycle) > 1 else "",
                hint="a candidate deadlock: whether it bites depends on "
                     "buffer capacities and data volume (§5.1)"))
    return findings


def analyze_kernel(kernel: Any, pedantic: bool = False) -> AnalysisReport:
    """Topology report for a built (not yet run) kernel or probe."""
    graph = analyze_threads(kernel.threads)
    report = AnalysisReport(tool="repro.analysis.topology")
    report.extend(topology_findings(graph, pedantic=pedantic))
    report.meta.update(graph.summary())
    report.sort()
    return report


class ProbeKernel:
    """Duck-typed stand-in for :class:`repro.runtime.kernel.Kernel`.

    Workload builders only call ``stream(...)`` and ``spawn(...)``;
    building against the probe records the topology without paying for
    a window file, scheme or scheduler — this is how the fuzzer
    pre-validates a workload plan before burning a trial.
    """

    class _Thread:
        __slots__ = ("tid", "name", "factory", "args")

        def __init__(self, tid: int, name: str, factory, args):
            self.tid = tid
            self.name = name or getattr(factory, "__name__", "t%d" % tid)
            self.factory = factory
            self.args = args

    def __init__(self) -> None:
        self.threads: List[ProbeKernel._Thread] = []
        self.streams: List[Stream] = []

    def stream(self, capacity: int, name: str = "") -> Stream:
        stream = Stream(capacity, name)
        self.streams.append(stream)
        return stream

    def spawn(self, factory, *args, name: str = ""):
        thread = self._Thread(len(self.threads), name, factory, args)
        self.threads.append(thread)
        return thread


def analyze_workload_config(config: Dict[str, Any],
                            pedantic: bool = False) -> AnalysisReport:
    """Topology report for a crash-bundle/fuzz workload ``config``.

    Builds the named workload against a :class:`ProbeKernel` (no
    window file, no scheduler) and analyzes what it spawned.  A config
    naming an unknown workload or whose builder raises yields a report
    with a single ``workload-build-error`` error finding.
    """
    from repro.faults.workloads import get_workload

    probe = ProbeKernel()
    try:
        workload = get_workload(str(config.get("workload")))
        workload.build(probe, config)
    except Exception as exc:
        report = AnalysisReport(tool="repro.analysis.topology")
        report.add(Finding(
            rule="workload-build-error", severity=ERROR,
            message="workload %r cannot be built: %s"
                    % (config.get("workload"), exc),
            hint="the config would fail before the kernel even runs"))
        return report
    return analyze_kernel(probe, pedantic=pedantic)
