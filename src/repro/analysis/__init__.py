"""Static analysis over both sides of the simulator.

Two fronts share one report format (``repro.analysis-report`` v1):

* the **guest-program verifier** (:mod:`repro.analysis.verifier`)
  checks assembled ISA programs — control flow, window-depth balance,
  stale-register hazards — and, via the counter-exact abstract
  interpreter (:mod:`repro.analysis.absmachine` driving
  :mod:`repro.analysis.winmodel`), *predicts* the overflow/underflow
  trap counts and WIM wraparounds a launch configuration will observe;
  :mod:`repro.analysis.topology` does the same job for stream
  workloads (producer/consumer graph, guaranteed and candidate
  deadlocks);
* the **hot-path invariant linter** (:mod:`repro.analysis.linter`)
  keeps the simulator's own inner loops honest: guarded trace
  emission, None-gated telemetry buffers, ``__slots__`` on per-step
  classes, no wall-clock or global-RNG calls in the cycle domain.

Command line: ``python -m repro.analysis check|lint``.
"""

from repro.analysis.report import (
    ERROR,
    INFO,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Finding,
    merge_reports,
)
from repro.analysis.cfg import ProgramCFG, build_cfg
from repro.analysis.depth import UNBOUNDED, DepthBounds, compute_bounds
from repro.analysis.absmachine import (
    AbstractMachine,
    ImpreciseError,
    ProgramError,
)
from repro.analysis.winmodel import ModelCounters, WindowModel, make_model
from repro.analysis.linter import lint_paths, lint_source
from repro.analysis.topology import (
    ProbeKernel,
    TopologyGraph,
    analyze_kernel,
    analyze_threads,
    analyze_workload_config,
)
from repro.analysis.verifier import (
    ProgramCase,
    ThreadSpec,
    check_program,
    corpus_cases,
    verify_corpus,
    verify_program,
)

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "merge_reports",
    "ProgramCFG",
    "build_cfg",
    "UNBOUNDED",
    "DepthBounds",
    "compute_bounds",
    "AbstractMachine",
    "ImpreciseError",
    "ProgramError",
    "ModelCounters",
    "WindowModel",
    "make_model",
    "lint_paths",
    "lint_source",
    "ProbeKernel",
    "TopologyGraph",
    "analyze_kernel",
    "analyze_threads",
    "analyze_workload_config",
    "ProgramCase",
    "ThreadSpec",
    "check_program",
    "corpus_cases",
    "verify_corpus",
    "verify_program",
]
