"""Abstract executor: runs a guest program over the occupancy model.

This is the precision engine behind the verifier's *exact* predictions.
It interprets an assembled :class:`~repro.isa.assembler.Program` with
the same fetch/dispatch/scheduling structure as
:class:`repro.isa.machine.Machine`, but drives a
:class:`repro.analysis.winmodel.WindowModel` instead of the physical
window file, and keeps each thread's register state as a stack of
*logical* frames.

Logical frames are sound because the simulator always preserves frame
data across physical motion: spilled ins/locals round-trip through the
backing store, the outs of window ``w`` physically *are* the ins of the
window above (so caller outs and callee ins alias one list here), the
stack-top outs travel through ``saved_outs`` across switches, and the
in-place underflow restore copies ins to outs before reusing the
window.  What is *not* preserved is residue: a fresh window's locals
and outs hold whatever the previous occupant left, so they start as
:data:`UNKNOWN` and the sentinel propagates through arithmetic.

When control flow or memory addressing comes to depend on an UNKNOWN
value the executor raises :class:`ImpreciseError` — the verifier then
falls back to the CFG depth bounds ("bounded" verdict).  A fault that
fires on concrete state (pc out of range, restore at the entry window,
budget exhaustion) is a *guaranteed* guest failure and raises
:class:`ProgramError`.
"""

from __future__ import annotations

import operator
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.winmodel import (ModelError, ModelThread, WindowModel,
                                     make_model)
from repro.core.costs import CostModel
from repro.errors import ReproError
from repro.isa.assembler import Program
from repro.isa.instructions import ALU_OPS, Operand


class _Unknown:
    """Singleton sentinel for residue values (never compares equal)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<?>"


UNKNOWN = _Unknown()


class ImpreciseError(ReproError):
    """Control flow or addressing depends on an unknown value — the
    abstract execution cannot continue exactly."""


class ProgramError(ReproError):
    """The guest is guaranteed to fault at this point on real runs."""


_ALU_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": operator.add,
    "sub": operator.sub,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "sll": operator.lshift,
    "srl": operator.rshift,
    "smul": operator.mul,
}

_BRANCH_TESTS: Dict[str, Callable[[int], bool]] = {
    "be": lambda cc: cc == 0,
    "bne": lambda cc: cc != 0,
    "bg": lambda cc: cc > 0,
    "bge": lambda cc: cc >= 0,
    "bl": lambda cc: cc < 0,
    "ble": lambda cc: cc <= 0,
}

_EXIT_DONE = "done"
_EXIT_YIELDED = "yielded"
_EXIT_BUDGET = "budget"


class AbsFrame:
    """One logical register window: ins / locals / outs value lists."""

    __slots__ = ("ins", "local_regs", "outs")

    def __init__(self, ins: List[object], local_regs: List[object],
                 outs: List[object]):
        self.ins = ins
        self.local_regs = local_regs
        self.outs = outs


class AbsThread:
    """Abstract counterpart of ``machine.HWThread``."""

    __slots__ = ("tid", "name", "pc", "args", "cc", "mt", "globals",
                 "frames", "done", "exit_value", "instructions")

    def __init__(self, tid: int, name: str, entry: int, args,
                 mt: ModelThread):
        self.tid = tid
        self.name = name
        self.pc = entry
        self.args = tuple(args)
        self.cc: object = 0
        self.mt = mt
        self.globals: List[object] = [0] * 8
        # the entry frame: ins and locals are zero-filled by the scheme
        # at first dispatch; outs are physical residue
        self.frames: List[AbsFrame] = [
            AbsFrame([0] * 8, [0] * 8, [UNKNOWN] * 8)]
        self.done = False
        self.exit_value: Optional[int] = None
        self.instructions = 0


class AbstractMachine:
    """Counter-exact abstract interpreter for an assembled program."""

    def __init__(self, program: Program, n_windows: int = 8,
                 scheme: str = "SP",
                 cost_model: Optional[CostModel] = None, **scheme_kwargs):
        self.program = program
        self.model: WindowModel = make_model(scheme, n_windows, cost_model,
                                             **scheme_kwargs)
        self.counters = self.model.counters
        self.memory: Dict[object, object] = {}
        self.threads: List[AbsThread] = []
        self.ready: deque = deque()
        self.current: Optional[AbsThread] = None
        self.steps = 0

    # -- setup -------------------------------------------------------------

    def add_thread(self, entry: str = "start", args=(),
                   name: str = "") -> AbsThread:
        tid = len(self.threads)
        mt = self.model.add_thread(tid)
        thread = AbsThread(tid, name or "hw%d" % tid,
                           self.program.entry(entry), args, mt)
        self.threads.append(thread)
        self.ready.append(thread)
        return thread

    def poke(self, addr: int, value: int) -> None:
        self.memory[addr] = value

    def peek(self, addr: int):
        return self.memory.get(addr, 0)

    # -- execution ---------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> Dict[str, Optional[int]]:
        steps = 0
        while self.ready or self.current is not None:
            if self.current is None:
                self._switch_to(self.ready.popleft())
            executed, reason = self._run_batch(max_steps - steps)
            steps += executed
            if steps >= max_steps:
                raise ProgramError(
                    "step budget of %d exhausted (last batch: %s)"
                    % (max_steps,
                       "budget" if reason is _EXIT_BUDGET else "event"))
        self.steps = steps
        return {t.name: t.exit_value for t in self.threads}

    def _switch_to(self, thread: AbsThread) -> None:
        out = self.current
        self.model.context_switch(
            out.mt if out is not None else None, thread.mt)
        if thread.instructions == 0:
            ins = thread.frames[-1].ins
            for i, arg in enumerate(thread.args[:6]):
                ins[i] = arg
        self.current = thread

    def _run_batch(self, budget: int) -> Tuple[int, str]:
        thread = self.current
        assert thread is not None
        instrs = self.program.instructions
        n_instrs = len(instrs)
        executed = 0
        while executed < budget:
            pc = thread.pc
            if not 0 <= pc < n_instrs:
                raise ProgramError(
                    "%s: pc %d out of range" % (thread.name, pc))
            instr = instrs[pc]
            executed += 1
            thread.instructions += 1
            reason = self._step(thread, instr)
            if reason:
                return executed, reason
        return executed, _EXIT_BUDGET

    # -- one instruction ---------------------------------------------------

    def _step(self, thread: AbsThread, instr) -> Optional[str]:
        op = instr.op
        ops = instr.operands
        c = self.counters
        if op in _ALU_FUNCS:
            a = self._value(thread, ops[0])
            b = self._value(thread, ops[1])
            if a is UNKNOWN or b is UNKNOWN:
                result: object = UNKNOWN
            else:
                try:
                    result = _ALU_FUNCS[op](a, b)
                except (ValueError, TypeError, OverflowError) as exc:
                    raise ProgramError(
                        "%s: %s faults: %s" % (thread.name, op, exc),
                        pc=thread.pc) from exc
            self._write(thread, ops[2], result)
            c.compute_cycles += 1
            thread.pc += 1
            return None
        if op in _BRANCH_TESTS:
            cc = thread.cc
            if cc is UNKNOWN:
                raise ImpreciseError(
                    "%s: %s branches on an unknown condition code"
                    % (thread.name, op), pc=thread.pc)
            thread.pc = (instr.label if _BRANCH_TESTS[op](cc)
                         else thread.pc + 1)
            c.compute_cycles += 1
            return None
        if op == "mov":
            self._write(thread, ops[1], self._value(thread, ops[0]))
            c.compute_cycles += 1
            thread.pc += 1
            return None
        if op == "cmp":
            a = self._value(thread, ops[0])
            b = self._value(thread, ops[1])
            thread.cc = UNKNOWN if (a is UNKNOWN or b is UNKNOWN) else a - b
            c.compute_cycles += 1
            thread.pc += 1
            return None
        if op == "ba":
            thread.pc = instr.label
            c.compute_cycles += 1
            return None
        if op == "ld":
            addr = self._address(thread, ops[0])
            self._write(thread, ops[1], self.memory.get(addr, 0))
            c.compute_cycles += 2
            thread.pc += 1
            return None
        if op == "st":
            addr = self._address(thread, ops[1])
            self.memory[addr] = self._value(thread, ops[0])
            c.compute_cycles += 3
            thread.pc += 1
            return None
        if op == "save":
            value: object = None
            if ops:
                a = self._value(thread, ops[0])
                b = self._value(thread, ops[1])
                value = (UNKNOWN if (a is UNKNOWN or b is UNKNOWN)
                         else a + b)
            self.model.save(thread.mt)
            caller = thread.frames[-1]
            # callee ins alias the caller's outs (hardware adjacency);
            # locals and outs start as physical residue
            thread.frames.append(
                AbsFrame(caller.outs, [UNKNOWN] * 8, [UNKNOWN] * 8))
            if ops:
                self._write(thread, ops[2], value)
            thread.pc += 1
            return None
        if op == "restore":
            self._do_restore(thread, ops)
            thread.pc += 1
            return None
        if op == "call":
            thread.frames[-1].outs[7] = thread.pc
            c.compute_cycles += 1
            thread.pc = instr.label
            return None
        if op == "retl":
            link = thread.frames[-1].outs[7]
            if link is UNKNOWN:
                raise ImpreciseError(
                    "%s: retl through an unknown %%o7" % thread.name,
                    pc=thread.pc)
            thread.pc = link + 1
            c.compute_cycles += 1
            return None
        if op == "ret":
            target = self._return_target(thread)
            self._do_restore(thread, ())
            thread.pc = target
            return None
        if op == "retadd":
            target = self._return_target(thread)
            self._do_restore(thread, ops)
            thread.pc = target
            return None
        if op == "nop":
            c.compute_cycles += 1
            thread.pc += 1
            return None
        if op == "halt":
            value = thread.frames[-1].outs[0]
            thread.exit_value = None if value is UNKNOWN else value
            thread.done = True
            self.model.retire(thread.mt)
            self.current = None
            return _EXIT_DONE
        if op == "yield":
            c.compute_cycles += 1
            thread.pc += 1
            if self.ready:
                self.ready.append(thread)
                self._switch_to(self.ready.popleft())
                return _EXIT_YIELDED
            return None
        raise ProgramError("unknown op %r" % op, pc=thread.pc)

    def _return_target(self, thread: AbsThread) -> int:
        link = thread.frames[-1].ins[7]
        if link is UNKNOWN:
            raise ImpreciseError(
                "%s: return through an unknown %%i7" % thread.name,
                pc=thread.pc)
        return link + 1

    def _do_restore(self, thread: AbsThread, operands) -> None:
        value: object = None
        if operands:
            a = self._value(thread, operands[0])
            b = self._value(thread, operands[1])
            value = UNKNOWN if (a is UNKNOWN or b is UNKNOWN) else a + b
        try:
            self.model.restore(thread.mt)
        except ModelError as exc:
            raise ProgramError(str(exc), pc=thread.pc) from exc
        thread.frames.pop()
        if operands:
            self._write(thread, operands[2], value)

    # -- operand helpers ---------------------------------------------------

    def _address(self, thread: AbsThread, mem: Operand):
        base = self._read_register(thread, mem.bank, mem.index)
        if base is UNKNOWN:
            raise ImpreciseError(
                "%s: memory access through an unknown %%%s%d"
                % (thread.name, mem.bank, mem.index), pc=thread.pc)
        return base + mem.offset

    def _value(self, thread: AbsThread, operand: Operand):
        if operand.kind == Operand.IMM:
            return operand.value
        return self._read_register(thread, operand.bank, operand.index)

    def _read_register(self, thread: AbsThread, bank: str, index: int):
        if bank == "g":
            return thread.globals[index]
        frame = thread.frames[-1]
        if bank == "o":
            return frame.outs[index]
        if bank == "l":
            return frame.local_regs[index]
        return frame.ins[index]

    def _write(self, thread: AbsThread, operand: Operand, value) -> None:
        bank = operand.bank
        index = operand.index
        if bank == "g":
            if index != 0:  # %g0 is hardwired to zero
                thread.globals[index] = value
            return
        frame = thread.frames[-1]
        if bank == "o":
            frame.outs[index] = value
        elif bank == "l":
            frame.local_regs[index] = value
        else:
            frame.ins[index] = value
