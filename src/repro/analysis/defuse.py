"""Def-use pass: reads of registers never written in the current window.

The stale-value hazard the SP sharing scheme exposes (§3/§4.1): after a
``save``, the new window's locals and outs hold whatever the previous
occupant — possibly *another thread* — left there.  A read before a
write in the same window therefore observes garbage that happens to be
stable under one scheme/schedule and changes under another.

The pass runs per function as a forward must-defined dataflow at
instruction granularity (meet = intersection, worklist to fixpoint):

* before a function's own ``save`` the code runs in the caller's
  window, where every register is considered defined;
* ``save`` starts a fresh window: ins stay defined (they are the
  caller's outs = arguments), locals and outs become undefined;
* ``call`` defines ``%o7`` (linkage) and, after the callee returns,
  every out register (return values live in the callee's ins, which
  alias the caller's outs) — so reads of outs after a call never flag;
* a thread *entry* window is zero-filled by the schemes at first
  dispatch, so entry ins and locals are defined; outs are residue.

Reads of a may-undefined ``%l``/``%o`` register are reported as
warnings (rule ``stale-read``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import ProgramCFG
from repro.analysis.report import WARNING, Finding
from repro.isa.instructions import ALU_OPS, BRANCH_OPS, Operand

#: bit positions: locals 0..7, outs 8..15 (ins/globals never flag)
_LOCAL = 0
_OUT = 8
_ALL_DEFINED = (1 << 16) - 1
_OUTS_UNDEFINED = (1 << 16) - 1 - (0xFF << _OUT)
_FRESH_WINDOW = _ALL_DEFINED & ~(0xFF << _LOCAL) & ~(0xFF << _OUT)


def _bit(operand: Operand) -> Optional[int]:
    if operand.bank == "l":
        return _LOCAL + operand.index
    if operand.bank == "o":
        return _OUT + operand.index
    return None


def _reads_writes(instr) -> Tuple[List[Operand], List[Operand]]:
    """Register operands an instruction reads / writes."""
    op = instr.op
    ops = instr.operands
    regs = [o for o in ops if o.kind == Operand.REG]
    mems = [o for o in ops if o.kind == Operand.MEM]
    if op in ALU_OPS:
        return regs[:-1] + mems, regs[-1:]
    if op == "mov":
        return regs[:-1] + mems, regs[-1:]
    if op == "cmp":
        return regs + mems, []
    if op == "ld":
        return mems, regs[-1:] if regs else []
    if op == "st":
        return regs + mems, []
    if op in ("save", "restore", "retadd") and ops:
        # three-operand form: sources read in the old window, the
        # destination written in the new one (handled by the caller's
        # window-transition logic; the write itself never flags)
        return regs[:-1] + mems, []
    return mems, []


def analyze_function(cfg: ProgramCFG, entry: int,
                     thread_entry: bool = False,
                     program_name: str = "<program>") -> List[Finding]:
    fn = cfg.functions[entry]
    instrs = cfg.program.instructions
    # entry state: caller's window, all defined — except a thread entry
    # window, whose outs are physical residue
    entry_state = _OUTS_UNDEFINED if thread_entry else _ALL_DEFINED
    state_in: Dict[int, int] = {entry: entry_state}
    worklist: List[int] = [entry]
    flagged: Set[Tuple[int, int]] = set()
    findings: List[Finding] = []
    while worklist:
        index = worklist.pop()
        defined = state_in[index]
        instr = instrs[index]
        op = instr.op
        reads, writes = _reads_writes(instr)
        for operand in reads:
            bit = _bit(operand)
            if bit is not None and not (defined >> bit) & 1:
                key = (index, bit)
                if key not in flagged:
                    flagged.add(key)
                    findings.append(Finding(
                        rule="stale-read", severity=WARNING,
                        message=("%s reads %%%s%d before any write in "
                                 "the current window"
                                 % (op, operand.bank, operand.index)),
                        file=program_name, line=instr.line,
                        hint=("write the register first; under window "
                              "sharing it holds another frame's residue")))
        after = defined
        for operand in writes:
            bit = _bit(operand)
            if bit is not None:
                after |= 1 << bit
        if op == "save":
            after = _FRESH_WINDOW
        elif op in ("restore", "ret", "retadd"):
            # back in the caller's window: everything is live data
            after = _ALL_DEFINED
        elif op == "call":
            # %o7 written now; on return the outs alias the callee's
            # ins (return values), so treat every out as defined
            after |= 0xFF << _OUT
        for nxt in fn.succ.get(index, ()):
            if nxt >= len(instrs):
                continue
            known = state_in.get(nxt)
            merged = after if known is None else (known & after)
            if known is None or merged != known:
                state_in[nxt] = merged
                worklist.append(nxt)
    return findings


def analyze_program(cfg: ProgramCFG, thread_entries: Set[int],
                    program_name: str = "<program>") -> List[Finding]:
    findings: List[Finding] = []
    for entry in sorted(cfg.functions):
        findings.extend(analyze_function(
            cfg, entry, thread_entry=entry in thread_entries,
            program_name=program_name))
    return findings
