"""The ``repro.analysis-report v1`` finding schema.

Every analysis front — the guest-program verifier, the stream-topology
pass and the hot-path linter — reports through the same structured
:class:`Finding`/:class:`AnalysisReport` pair, so the CLI, the CI job,
the fuzzer's pre-validation verdicts and the pre-run gates all consume
one JSON shape: schema name + version, then a list of findings with a
``file:line`` location, a severity, and a fix hint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ReproError

SCHEMA = "repro.analysis-report"
VERSION = 1

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: rank used for sorting (most severe first) and gating
_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}
SEVERITIES = tuple(_SEVERITY_RANK)


class AnalysisError(ReproError):
    """A pre-run gate refused the program/workload/tree.

    Raised by ``Machine(analyze=True)``, ``Kernel(analyze=True)`` and
    the fuzzer's pre-validation when static analysis finds an
    error-severity defect.  Carries the offending report so callers can
    render or serialise the findings.
    """

    def __init__(self, message: str = "",
                 report: Optional["AnalysisReport"] = None, **context: Any):
        super().__init__(message, **context)
        self.report = report


@dataclass
class Finding:
    """One defect: what rule fired, where, how bad, and how to fix it."""

    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError("bad severity %r (expected one of %s)"
                             % (self.severity, ", ".join(SEVERITIES)))

    @property
    def location(self) -> str:
        return "%s:%d" % (self.file or "<unknown>", self.line)

    def describe(self) -> str:
        text = "%s: %s: [%s] %s" % (self.location, self.severity,
                                    self.rule, self.message)
        if self.hint:
            text += " (hint: %s)" % self.hint
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "file": self.file,
                "line": self.line, "hint": self.hint}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(rule=str(data["rule"]), severity=str(data["severity"]),
                   message=str(data["message"]),
                   file=str(data.get("file", "")),
                   line=int(data.get("line", 0)),
                   hint=str(data.get("hint", "")))


@dataclass
class AnalysisReport:
    """A tool run's findings plus machine-readable extras (``meta``)."""

    tool: str
    findings: List[Finding] = field(default_factory=list)
    #: structured tool-specific payload (predictions, graph summary...)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (_SEVERITY_RANK[f.severity],
                                          f.file, f.line, f.rule))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (the gate criterion)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No findings at all (the CI criterion)."""
        return not self.findings

    def count(self, severity: str) -> int:
        return sum(f.severity == severity for f in self.findings)

    def summary(self) -> str:
        return ("%s: %d finding(s) — %d error, %d warning, %d info"
                % (self.tool, len(self.findings), self.count(ERROR),
                   self.count(WARNING), self.count(INFO)))

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": SCHEMA, "version": VERSION, "tool": self.tool,
                "findings": [f.to_dict() for f in self.findings],
                "meta": self.meta}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisReport":
        if data.get("schema") != SCHEMA:
            raise ValueError("not a %s document: schema=%r"
                             % (SCHEMA, data.get("schema")))
        if int(data.get("version", 0)) > VERSION:
            raise ValueError("report version %s is newer than this build"
                             % data.get("version"))
        report = cls(tool=str(data.get("tool", "?")),
                     meta=dict(data.get("meta", {})))
        for entry in data.get("findings", ()):
            report.add(Finding.from_dict(entry))
        return report

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        return cls.from_dict(json.loads(text))

    def raise_if_errors(self, what: str) -> None:
        """The gate: raise :class:`AnalysisError` on any error finding."""
        errors = self.errors
        if errors:
            raise AnalysisError(
                "static analysis rejected %s: %s" % (what,
                                                     errors[0].describe()),
                report=self, findings=len(errors))


def merge_reports(tool: str, *reports: AnalysisReport) -> AnalysisReport:
    """Combine reports (e.g. verifier + topology) into one document."""
    merged = AnalysisReport(tool=tool)
    for report in reports:
        merged.extend(report.findings)
        if report.meta:
            merged.meta[report.tool] = report.meta
    merged.sort()
    return merged
