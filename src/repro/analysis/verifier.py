"""Static verifier for assembled guest programs.

Ties the front-end passes together over one program:

* structural checks from the CFG (control flow falling off the end of
  the program, unreachable instructions);
* window-depth facts from the per-function summaries (restores below
  the thread's base frame, unbalanced return paths, recursion making
  the depth input-dependent);
* stale-value hazards from the def-use pass (reads of registers never
  written in the current window);
* and — when the launch configuration is known — *predictions*: the
  abstract interpreter replays the program against the counter-exact
  window model, yielding the overflow/underflow trap counts, WIM
  wraparounds and per-thread maximum depth the real machine will
  observe for that window count and scheme.  When the program's control
  flow depends on values the abstract machine cannot know, predictions
  degrade from ``exact`` to ``bounded`` (CFG depth bounds only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.absmachine import (AbstractMachine, ImpreciseError,
                                       ProgramError)
from repro.analysis.cfg import ProgramCFG, build_cfg
from repro.analysis.defuse import analyze_program as defuse_program
from repro.analysis.depth import UNBOUNDED, compute_bounds
from repro.analysis.report import (ERROR, INFO, WARNING, AnalysisReport,
                                   Finding)
from repro.isa.assembler import Program, assemble


@dataclass(frozen=True)
class ThreadSpec:
    """One thread launch: entry label, arguments, display name."""

    entry: str = "start"
    args: Tuple[int, ...] = ()
    name: str = ""


@dataclass(frozen=True)
class ProgramCase:
    """A committed program plus its canonical launch configuration."""

    name: str
    source: str
    threads: Tuple[ThreadSpec, ...] = (ThreadSpec(),)
    pokes: Tuple[Tuple[int, int], ...] = ()
    max_steps: int = 3_000_000


def corpus_cases() -> List[ProgramCase]:
    """Every committed ISA program with its canonical run setup."""
    from repro.isa import programs as p
    return [
        ProgramCase("factorial", p.FACTORIAL),
        ProgramCase("factorial_retadd", p.FACTORIAL_RETADD),
        ProgramCase("fibonacci", p.FIBONACCI),
        ProgramCase("mutual", p.MUTUAL),
        ProgramCase("two_counters", p.TWO_COUNTERS,
                    threads=(ThreadSpec("start", (0, 512), "c1"),
                             ThreadSpec("start", (0, 768), "c2"))),
        ProgramCase("tak", p.TAK),
        ProgramCase("ackermann", p.ACKERMANN),
        ProgramCase("deep_sum", p.DEEP_SUM, pokes=((0, 40),)),
    ]


def _line(program: Program, index: int) -> int:
    if 0 <= index < len(program.instructions):
        return program.instructions[index].line or 0
    return 0


def _structural_findings(cfg: ProgramCFG, name: str) -> List[Finding]:
    program = cfg.program
    findings: List[Finding] = []
    for entry in sorted(cfg.functions):
        fn = cfg.functions[entry]
        for index in sorted(set(fn.falls_off)):
            findings.append(Finding(
                rule="fall-off-end", severity=ERROR,
                message="control flow in %r can run past the end of the "
                        "program" % fn.name,
                file=name, line=_line(program, min(
                    index, len(program.instructions) - 1)),
                hint="end every path with halt, ret/retl/retadd or a "
                     "branch"))
    if cfg.unreachable:
        first = cfg.unreachable[0]
        findings.append(Finding(
            rule="unreachable-code", severity=INFO,
            message="%d instruction(s) unreachable from any entry "
                    "(first at index %d)" % (len(cfg.unreachable), first),
            file=name, line=_line(program, first),
            hint="dead code, or an entry label missing from "
                 "thread_entries"))
    return findings


def _depth_findings(cfg: ProgramCFG, bounds, entries: List[int],
                    name: str) -> List[Finding]:
    program = cfg.program
    findings: List[Finding] = []
    entry_set = set(entries)
    for entry in sorted(cfg.functions):
        summary = bounds.summaries[entry]
        if entry in entry_set and summary.min_local < 0:
            index = next((i for i, net in summary.returns if net < 0),
                         entry)
            findings.append(Finding(
                rule="depth-underflow", severity=ERROR,
                message="thread entry %r can restore below its base "
                        "frame (min relative depth %d)"
                        % (summary.name, summary.min_local),
                file=name, line=_line(program, index),
                hint="a thread's root frame has depth 1; restoring past "
                     "it faults the machine"))
        elif entry not in entry_set and not summary.balanced:
            detail = ("joins at conflicting depths"
                      if summary.conflicts else
                      "net depth %+d on some return path"
                      % min(net for __, net in summary.returns))
            findings.append(Finding(
                rule="unbalanced-return", severity=WARNING,
                message="function %r: %s" % (summary.name, detail),
                file=name, line=_line(program, entry),
                hint="callers resume one window above where they "
                     "called; unbalanced save/restore corrupts the "
                     "caller's frame"))
    for entry in sorted(entry_set):
        if entry in cfg.functions \
                and bounds.thread_bound(entry) is UNBOUNDED:
            findings.append(Finding(
                rule="depth-unbounded", severity=INFO,
                message="thread entry %r reaches recursive or "
                        "unbalanced calls; its window depth is "
                        "input-dependent"
                        % bounds.summaries[entry].name,
                file=name, line=_line(program, entry),
                hint="trap-count predictions need the abstract "
                     "interpreter (exact mode) for this program"))
    return findings


def _predict(program: Program, threads: Sequence[ThreadSpec],
             pokes: Sequence[Tuple[int, int]], n_windows: int,
             scheme: str, cost_model, max_steps: int,
             scheme_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    machine = AbstractMachine(program, n_windows=n_windows, scheme=scheme,
                              cost_model=cost_model, **scheme_kwargs)
    for addr, value in pokes:
        machine.poke(addr, value)
    handles = [machine.add_thread(spec.entry, args=spec.args,
                                  name=spec.name)
               for spec in threads]
    exits = machine.run(max_steps=max_steps)
    counters = machine.counters
    comparable = counters.as_comparable()
    # the transfer histogram is keyed by (saved, restored) tuples;
    # flatten for the JSON report while keeping deterministic order
    comparable["switch_transfer_hist"] = {
        "%d,%d" % key: count
        for key, count in sorted(comparable["switch_transfer_hist"].items())}
    return {
        "mode": "exact",
        "counters": comparable,
        "wraparounds": counters.wraparounds,
        "exit_values": exits,
        "threads": [
            {"name": t.name, "max_depth": t.mt.max_depth,
             "saves": t.mt.stat_saves, "restores": t.mt.stat_restores}
            for t in handles],
    }


def verify_program(program: Union[Program, str], name: str = "<program>",
                   threads: Optional[Sequence[ThreadSpec]] = None,
                   thread_entries: Sequence[str] = ("start",),
                   pokes: Sequence[Tuple[int, int]] = (),
                   n_windows: int = 8, scheme: str = "SP",
                   cost_model=None, predict: bool = True,
                   max_steps: int = 3_000_000,
                   **scheme_kwargs) -> AnalysisReport:
    """Verify one program; returns the full report.

    ``threads`` (launch configuration) enables predictions; without it
    only the structural/depth/def-use passes run over
    ``thread_entries``.
    """
    report = AnalysisReport(tool="repro.analysis.verifier")
    if isinstance(program, str):
        try:
            program = assemble(program)
        except Exception as exc:
            report.add(Finding(
                rule="assembly-error", severity=ERROR,
                message="program does not assemble: %s" % exc, file=name,
                hint="fix the assembly error first"))
            return report
    if threads is not None:
        entries = [spec.entry for spec in threads]
    else:
        entries = list(thread_entries)
    for label in entries:
        if label not in program.labels:
            report.add(Finding(
                rule="missing-entry", severity=ERROR,
                message="thread entry label %r is not defined" % label,
                file=name,
                hint="add_thread(%r) will raise at launch" % label))
    defined = [label for label in dict.fromkeys(entries)
               if label in program.labels]
    cfg = build_cfg(program, thread_entries=defined)
    entry_indices = [program.labels[label] for label in defined]
    report.extend(_structural_findings(cfg, name))
    bounds = compute_bounds(cfg)
    report.extend(_depth_findings(cfg, bounds, entry_indices, name))
    report.extend(defuse_program(cfg, set(entry_indices),
                                 program_name=name))

    report.meta["program"] = name
    report.meta["functions"] = {
        cfg.functions[e].name: {
            "entry": e,
            "max_extra_depth": bounds.bounds.get(e),
            "balanced": bounds.summaries[e].balanced,
        } for e in sorted(cfg.functions)}
    report.meta["thread_depth_bounds"] = {
        label: bounds.thread_bound(program.labels[label])
        for label in defined}

    if predict and threads is not None and report.ok:
        try:
            report.meta["prediction"] = _predict(
                program, threads, pokes, n_windows, scheme, cost_model,
                max_steps, scheme_kwargs)
            # recursion was resolved exactly, so the depth note (the
            # predictions-may-degrade caveat) no longer applies
            report.findings = [f for f in report.findings
                               if f.rule != "depth-unbounded"]
        except ImpreciseError as exc:
            report.meta["prediction"] = {
                "mode": "bounded", "reason": str(exc),
                "thread_depth_bounds":
                    report.meta["thread_depth_bounds"]}
        except ProgramError as exc:
            report.add(Finding(
                rule="guest-fault", severity=ERROR,
                message="the program faults when run: %s" % exc,
                file=name,
                hint="the abstract interpreter hit a guaranteed "
                     "machine fault on the canonical launch"))
            report.meta["prediction"] = {"mode": "fault",
                                         "reason": str(exc)}
    report.sort()
    return report


def check_program(program: Union[Program, str], name: str = "<program>",
                  **kwargs) -> AnalysisReport:
    """Verify and raise :class:`AnalysisError` on any error finding."""
    report = verify_program(program, name=name, **kwargs)
    report.raise_if_errors("program %r" % name)
    return report


def verify_corpus(n_windows: int = 8, scheme: str = "SP",
                  predict: bool = True) -> AnalysisReport:
    """Verify every committed program under its canonical launch."""
    from repro.analysis.report import merge_reports
    reports = []
    for case in corpus_cases():
        reports.append(verify_program(
            case.source, name=case.name, threads=case.threads,
            pokes=case.pokes, n_windows=n_windows, scheme=scheme,
            predict=predict, max_steps=case.max_steps))
    merged = merge_reports("repro.analysis.verifier", *reports)
    merged.meta["programs"] = {
        r.meta["program"]: {
            "depth_bounds": r.meta.get("thread_depth_bounds"),
            "prediction_mode":
                (r.meta.get("prediction") or {}).get("mode"),
        } for r in reports}
    return merged
