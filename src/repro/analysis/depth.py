"""Window-depth abstract interpretation over the CFG.

Assigns every instruction of a function a *relative depth*: how many
windows the thread has pushed since the function entry (``save`` +1,
``restore``/``ret``/``retadd`` -1).  For well-formed programs the
relative depth at an instruction is path-independent; a join reached
at two different depths means an unbalanced save/restore structure,
which is reported instead of bounded.

Composing the per-function summaries over the call graph yields the
static per-thread depth bound: for an acyclic call graph the exact
maximum over all paths, for recursive programs "unbounded" (the depth
depends on data — the abstract executor takes over when the data is
statically known).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import DEPTH_DELTA, ProgramCFG, RETURN_OPS

#: bound value meaning "grows without a static limit"
UNBOUNDED: Optional[int] = None


@dataclass
class DepthSummary:
    """Per-function depth facts, relative to the entry window (depth 0)."""

    entry: int
    name: str
    #: relative depth *before* each instruction executes
    depth_at: Dict[int, int] = field(default_factory=dict)
    #: max relative depth reached inside the function body itself
    max_local: int = 0
    #: min relative depth (negative: restores past the entry window)
    min_local: int = 0
    #: (ret/retl/retadd index, net depth after returning) per exit
    returns: List[Tuple[int, int]] = field(default_factory=list)
    #: joins reached at conflicting depths (index, depth_a, depth_b)
    conflicts: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        """Every return path leaves the caller's depth unchanged."""
        return (not self.conflicts
                and all(net == 0 for __, net in self.returns))


def summarize_function(cfg: ProgramCFG, entry: int) -> DepthSummary:
    fn = cfg.functions[entry]
    summary = DepthSummary(entry=entry, name=fn.name)
    depth_at = summary.depth_at
    stack: List[Tuple[int, int]] = [(entry, 0)]
    while stack:
        index, depth = stack.pop()
        known = depth_at.get(index)
        if known is not None:
            if known != depth:
                summary.conflicts.append((index, known, depth))
            continue
        depth_at[index] = depth
        if depth > summary.max_local:
            summary.max_local = depth
        op = cfg.program.instructions[index].op
        after = depth + DEPTH_DELTA.get(op, 0)
        if after < summary.min_local:
            summary.min_local = after
        if op in RETURN_OPS:
            summary.returns.append((index, after))
            continue
        for nxt in fn.succ.get(index, ()):
            if nxt < len(cfg.program.instructions):
                stack.append((nxt, after))
    return summary


@dataclass
class DepthBounds:
    """Program-level composition of the per-function summaries."""

    summaries: Dict[int, DepthSummary]
    #: entry index -> max additional depth a call to it can push
    #: (``UNBOUNDED`` on a recursive cycle or an unbalanced callee)
    bounds: Dict[int, Optional[int]]

    def thread_bound(self, entry: int) -> Optional[int]:
        """Max window depth a thread started at ``entry`` can reach
        (the entry window counts as depth 1)."""
        bound = self.bounds.get(entry, 0)
        return UNBOUNDED if bound is UNBOUNDED else 1 + bound


def compute_bounds(cfg: ProgramCFG) -> DepthBounds:
    summaries = {entry: summarize_function(cfg, entry)
                 for entry in cfg.functions}
    recursive = cfg.recursive_entries()
    bounds: Dict[int, Optional[int]] = {}

    def bound_of(entry: int, visiting: frozenset) -> Optional[int]:
        if entry in bounds:
            return bounds[entry]
        if entry in recursive or entry in visiting:
            bounds[entry] = UNBOUNDED
            return UNBOUNDED
        summary = summaries[entry]
        if summary.conflicts:
            bounds[entry] = UNBOUNDED
            return UNBOUNDED
        best = summary.max_local
        visiting = visiting | {entry}
        for index, callee in cfg.functions[entry].calls:
            at = summary.depth_at.get(index)
            if at is None:
                continue
            sub = bound_of(callee, visiting)
            if sub is UNBOUNDED:
                bounds[entry] = UNBOUNDED
                return UNBOUNDED
            if at + sub > best:
                best = at + sub
        bounds[entry] = best
        return best

    for entry in cfg.functions:
        bound_of(entry, frozenset())
    return DepthBounds(summaries=summaries, bounds=bounds)
