"""Counter-exact occupancy model of the NS/SNP/SP window schemes.

The verifier predicts overflow/underflow trap counts, WIM wraparound
and cycle totals for a given window count and scheme *without running
the simulator*.  To make those predictions exact rather than bounds,
this module re-states each scheme's bookkeeping — who occupies which
window, where the boundary sits, what the WIM says — minus everything
that moves register *data*.  Register contents never influence which
traps fire (only the guest's dynamic save/restore/switch sequence
does), so a model that tracks occupancy, residency and depth while
charging the same :class:`repro.core.costs.CostModel` calls the
schemes charge reproduces every counter bit-for-bit.

The abstract executor (:mod:`repro.analysis.absmachine`) drives this
model exactly as :class:`repro.isa.machine.Machine` drives the real
scheme; the differential suite pins the two against each other on the
committed program corpus.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.costs import CostModel
from repro.core.ns import DEFAULT_TRANSFER_DEPTH
from repro.core.sharing import GRANT_HEADROOM
from repro.errors import ReproError

#: window occupancy kinds (mirrors ``repro.windows.occupancy``)
FREE = 0
FRAME = 1
RESERVED = 2


class ModelError(ReproError):
    """The modelled guest hit a guaranteed fault (e.g. restore at the
    entry window) or the model itself lost a scheme invariant."""


@dataclass
class ModelCounters:
    """Predicted counterpart of :class:`repro.metrics.counters.Counters`."""

    saves: int = 0
    restores: int = 0
    overflow_traps: int = 0
    underflow_traps: int = 0
    windows_spilled: int = 0
    windows_restored: int = 0
    context_switches: int = 0
    switch_transfer_hist: _Counter = field(default_factory=_Counter)
    compute_cycles: int = 0
    call_cycles: int = 0
    trap_cycles: int = 0
    switch_cycles: int = 0
    #: saves whose target is window ``n_windows - 1`` — the CWP wrapped
    #: around the cyclic file (not a Counters field; checked against
    #: the trace-event stream instead)
    wraparounds: int = 0

    @property
    def total_cycles(self) -> int:
        return (self.compute_cycles + self.call_cycles
                + self.trap_cycles + self.switch_cycles)

    @property
    def window_traps(self) -> int:
        return self.overflow_traps + self.underflow_traps

    def as_comparable(self) -> Dict[str, object]:
        """The fields a dynamic ``Counters`` must match exactly."""
        return {
            "saves": self.saves, "restores": self.restores,
            "overflow_traps": self.overflow_traps,
            "underflow_traps": self.underflow_traps,
            "windows_spilled": self.windows_spilled,
            "windows_restored": self.windows_restored,
            "context_switches": self.context_switches,
            "switch_transfer_hist": dict(self.switch_transfer_hist),
            "compute_cycles": self.compute_cycles,
            "call_cycles": self.call_cycles,
            "trap_cycles": self.trap_cycles,
            "switch_cycles": self.switch_cycles,
            "total_cycles": self.total_cycles,
        }


class ModelThread:
    """Occupancy-only counterpart of ``ThreadWindows``."""

    __slots__ = ("tid", "cwp", "bottom", "resident", "depth", "stored",
                 "prw", "started", "saved_outs", "max_depth",
                 "stat_saves", "stat_restores", "stat_switches")

    def __init__(self, tid: int):
        self.tid = tid
        self.cwp: Optional[int] = None
        self.bottom: Optional[int] = None
        self.resident = 0
        self.depth = 0
        #: frames in the backing store (count only; data lives in the
        #: abstract executor's logical frame stack)
        self.stored = 0
        self.prw: Optional[int] = None
        self.started = False
        #: stack-top outs saved in the thread context (flag only)
        self.saved_outs = False
        self.max_depth = 0
        self.stat_saves = 0
        self.stat_restores = 0
        self.stat_switches = 0

    @property
    def has_windows(self) -> bool:
        return self.resident > 0


class WindowModel:
    """Base model: the CPU's save/restore plus shared scheme helpers.

    Subclass per scheme; geometry follows ``WindowFile`` exactly —
    ``above(w) == (w - 1) % n``, ``below(w) == (w + 1) % n``.
    """

    kind = "?"

    def __init__(self, n_windows: int, cost_model: Optional[CostModel] = None):
        self.n_windows = n_windows
        self.cost = cost_model if cost_model is not None else CostModel()
        self.counters = ModelCounters()
        self.kinds: List[int] = [FREE] * n_windows
        self.tids: List[Optional[int]] = [None] * n_windows
        #: True = invalid (traps), mirroring ``WindowFile._wim``
        self.wim: List[bool] = [False] * n_windows
        self.cwp = 0
        self.threads: Dict[int, ModelThread] = {}
        self.current: Optional[ModelThread] = None

    # -- geometry ----------------------------------------------------------

    def above(self, w: int) -> int:
        return (w - 1) % self.n_windows

    def below(self, w: int) -> int:
        return (w + 1) % self.n_windows

    # -- registration ------------------------------------------------------

    def add_thread(self, tid: int) -> ModelThread:
        if tid in self.threads:
            raise ModelError("thread %d already registered" % tid)
        tw = ModelThread(tid)
        self.threads[tid] = tw
        return tw

    # -- the two window instructions ---------------------------------------

    def save(self, tw: ModelThread) -> None:
        c = self.counters
        c.saves += 1
        c.call_cycles += self.cost.save_instr
        tw.stat_saves += 1
        target = self.above(self.cwp)
        if self.wim[target]:
            self.handle_overflow(tw)
            target = self.above(self.cwp)
            if self.wim[target]:
                raise ModelError(
                    "overflow handler left target window %d invalid"
                    % target, window=target, thread=tw.tid)
        if target == self.n_windows - 1:
            c.wraparounds += 1
        self.cwp = target
        tw.cwp = target
        tw.resident += 1
        tw.depth += 1
        if tw.depth > tw.max_depth:
            tw.max_depth = tw.depth
        self.kinds[target] = FRAME
        self.tids[target] = tw.tid

    def restore(self, tw: ModelThread) -> bool:
        if tw.depth <= 1:
            raise ModelError(
                "thread %d executed restore at depth %d" % (tw.tid, tw.depth))
        c = self.counters
        c.restores += 1
        c.call_cycles += self.cost.restore_instr
        tw.stat_restores += 1
        target = self.below(self.cwp)
        if self.wim[target]:
            self.handle_underflow(tw)
            return True
        self.kinds[self.cwp] = FREE
        self.tids[self.cwp] = None
        self.cwp = target
        tw.cwp = target
        tw.resident -= 1
        tw.depth -= 1
        return False

    # -- scheme policy (subclasses) ----------------------------------------

    def handle_overflow(self, tw: ModelThread) -> None:
        raise NotImplementedError

    def handle_underflow(self, tw: ModelThread) -> None:
        raise NotImplementedError

    def context_switch(self, out_tw: Optional[ModelThread],
                       in_tw: ModelThread, flush_out: bool = False) -> None:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def _spill_bottom(self, victim: ModelThread) -> int:
        old_bottom = victim.bottom
        if victim.resident == 0 or old_bottom is None:
            raise ModelError(
                "thread %d has no bottom window to spill" % victim.tid)
        victim.stored += 1
        victim.resident -= 1
        if victim.resident == 0:
            victim.cwp = None
            victim.bottom = None
        else:
            victim.bottom = self.above(old_bottom)
        self.kinds[old_bottom] = FREE
        self.tids[old_bottom] = None
        if victim.resident == 0 and victim.prw is not None:
            victim.saved_outs = True
            self.kinds[victim.prw] = FREE
            self.tids[victim.prw] = None
            victim.prw = None
        return old_bottom

    def _make_free(self, w: int) -> int:
        saves = 0
        while self.kinds[w] != FREE:
            if self.kinds[w] != FRAME:
                raise ModelError(
                    "window %d is reserved; expected a stack-bottom frame"
                    % w)
            victim = self.threads[self.tids[w]]
            if victim.bottom != w:
                raise ModelError(
                    "window %d belongs to thread %d but is not its bottom"
                    % (w, victim.tid))
            self._spill_bottom(victim)
            saves += 1
        return saves

    def _install_single_frame(self, tw: ModelThread, w: int) -> int:
        restores = 0
        if tw.started:
            if tw.stored == 0:
                raise ModelError(
                    "started thread %d is windowless with an empty "
                    "backing store" % tw.tid)
            tw.stored -= 1
            restores = 1
        else:
            tw.depth = 1
            if tw.depth > tw.max_depth:
                tw.max_depth = tw.depth
        tw.cwp = w
        tw.bottom = w
        tw.resident = 1
        self.kinds[w] = FRAME
        self.tids[w] = tw.tid
        return restores

    def _flush_out_windows(self, out_tw: Optional[ModelThread],
                           flush_out: bool) -> int:
        if not flush_out or out_tw is None or not out_tw.has_windows:
            return 0
        out_tw.saved_outs = True
        count = 0
        while out_tw.resident:
            self._spill_bottom(out_tw)
            count += 1
        return count

    def _run_thread(self, tw: ModelThread) -> None:
        assert tw.cwp is not None
        self.cwp = tw.cwp
        self.current = tw
        tw.started = True

    def _record_switch(self, in_tw: ModelThread, saves: int, restores: int,
                       cycles: int) -> None:
        c = self.counters
        c.context_switches += 1
        c.switch_transfer_hist[(saves, restores)] += 1
        c.windows_spilled += saves
        c.windows_restored += restores
        c.switch_cycles += cycles
        in_tw.stat_switches += 1

    def retire(self, tw: ModelThread) -> None:
        if tw.cwp is not None:
            w = tw.cwp
            for __ in range(tw.resident):
                self.kinds[w] = FREE
                self.tids[w] = None
                w = self.below(w)
        if tw.prw is not None:
            self.kinds[tw.prw] = FREE
            self.tids[tw.prw] = None
        tw.cwp = None
        tw.bottom = None
        tw.resident = 0
        tw.prw = None
        tw.depth = 0
        tw.stored = 0
        if self.current is tw:
            self.current = None

    def fold_thread_stats(self) -> Dict[str, Dict[int, int]]:
        """Predicted per-thread dicts (``Counters.fold_thread_stats``)."""
        return {
            "per_thread_saves": {t.tid: t.stat_saves
                                 for t in self.threads.values()
                                 if t.stat_saves},
            "per_thread_restores": {t.tid: t.stat_restores
                                    for t in self.threads.values()
                                    if t.stat_restores},
            "per_thread_switches": {t.tid: t.stat_switches
                                    for t in self.threads.values()
                                    if t.stat_switches},
        }


class NSModel(WindowModel):
    """Non-sharing: single reserved window, flush-all context switch."""

    kind = "NS"

    def __init__(self, n_windows: int,
                 cost_model: Optional[CostModel] = None,
                 transfer_depth: int = DEFAULT_TRANSFER_DEPTH):
        super().__init__(n_windows, cost_model)
        if transfer_depth < 1:
            raise ModelError("transfer depth must be >= 1, got %d"
                             % transfer_depth)
        self.transfer_depth = transfer_depth
        self.reserved = 0
        self.kinds[0] = RESERVED
        # set_wim_only: everything valid except the reserved window
        self.wim = [False] * n_windows
        self.wim[0] = True
        self._overflow_costs = [0] + [
            self.cost.overflow_cost_multi(k)
            for k in range(1, transfer_depth + 1)]
        self._underflow_costs = [0] + [
            self.cost.underflow_conventional_multi(k)
            for k in range(1, transfer_depth + 1)]

    def handle_overflow(self, tw: ModelThread) -> None:
        boundary = self.above(self.cwp)
        if boundary != self.reserved:
            raise ModelError("NS overflow at window %d but reserved is %d"
                             % (boundary, self.reserved))
        if tw.resident < 2:
            raise ModelError("NS overflow with %d resident frames"
                             % tw.resident)
        spills = min(self.transfer_depth, tw.resident - 1)
        new_reserved = self.reserved
        for __ in range(spills):
            new_reserved = self._spill_bottom(tw)
        self.kinds[self.reserved] = FREE
        self.tids[self.reserved] = None
        self.kinds[new_reserved] = RESERVED
        self.tids[new_reserved] = None
        self.reserved = new_reserved
        self.wim = [False] * self.n_windows
        self.wim[new_reserved] = True
        cycles = self._overflow_costs[spills]
        c = self.counters
        c.overflow_traps += 1
        c.windows_spilled += 1
        c.trap_cycles += cycles

    def handle_underflow(self, tw: ModelThread) -> None:
        target = self.below(self.cwp)
        if target != self.reserved:
            raise ModelError("NS underflow at window %d but reserved is %d"
                             % (target, self.reserved))
        if tw.resident != 1:
            raise ModelError("NS underflow with %d resident frames"
                             % tw.resident)
        restores = min(self.transfer_depth, tw.stored, self.n_windows - 2)
        if restores < 1:
            raise ModelError("NS underflow with an empty backing store")
        w = target
        last = target
        for __ in range(restores):
            tw.stored -= 1
            self.kinds[w] = FRAME
            self.tids[w] = tw.tid
            last = w
            w = self.below(w)
        self.kinds[self.cwp] = FREE
        self.tids[self.cwp] = None
        self.cwp = target
        tw.cwp = target
        tw.bottom = last
        tw.resident = restores
        tw.depth -= 1
        new_reserved = self.below(last)
        if self.kinds[new_reserved] != FREE:
            raise ModelError(
                "NS: window %d below the restored frames is occupied"
                % new_reserved)
        self.kinds[new_reserved] = RESERVED
        self.tids[new_reserved] = None
        self.reserved = new_reserved
        self.wim = [False] * self.n_windows
        self.wim[new_reserved] = True
        cycles = self._underflow_costs[restores]
        c = self.counters
        c.underflow_traps += 1
        c.windows_restored += 1
        c.trap_cycles += cycles

    def context_switch(self, out_tw: Optional[ModelThread],
                       in_tw: ModelThread, flush_out: bool = False) -> None:
        saves = 0
        if out_tw is not None and out_tw.resident > 0:
            out_tw.saved_outs = True
            while out_tw.resident > 0:
                out_tw.stored += 1
                assert out_tw.bottom is not None
                self.kinds[out_tw.bottom] = FREE
                self.tids[out_tw.bottom] = None
                out_tw.resident -= 1
                out_tw.bottom = self.above(out_tw.bottom)
                saves += 1
            out_tw.cwp = None
            out_tw.bottom = None
        top = self.above(self.reserved)
        if self.kinds[top] != FREE:
            raise ModelError(
                "NS: window %d above the reserved window is occupied "
                "after a flush" % top)
        restores = self._install_single_frame(in_tw, top)
        if in_tw.saved_outs:
            in_tw.saved_outs = False
        self._run_thread(in_tw)
        self.wim = [False] * self.n_windows
        self.wim[self.reserved] = True
        cycles = self.cost.ns_switch_cost(saves, restores)
        self._record_switch(in_tw, saves, restores, cycles)


class SharingModel(WindowModel):
    """Common trap handling of the SNP and SP models (paper §3.2)."""

    _prw_boundary = False
    grant_headroom = GRANT_HEADROOM

    def __init__(self, n_windows: int,
                 cost_model: Optional[CostModel] = None):
        super().__init__(n_windows, cost_model)
        self.reserved = 0
        self._overflow_spill_cost = self.cost.overflow_cost(True)
        self._overflow_free_cost = self.cost.overflow_cost(False)
        self._underflow_cost = self.cost.underflow_inplace_cost()

    def handle_overflow(self, tw: ModelThread) -> None:
        boundary = self.above(self.cwp)
        if self._prw_boundary:
            expected = tw.prw
            if expected is None:
                raise ModelError(
                    "thread %d has no PRW while running" % tw.tid)
        else:
            expected = self.reserved
        if boundary != expected:
            raise ModelError(
                "%s overflow at window %d but the boundary is %d"
                % (self.kind, boundary, expected))
        if self.above(boundary) == self.cwp:
            raise ModelError(
                "window file too small: overflow wrapped onto the CWP")
        self.kinds[boundary] = FREE
        self.tids[boundary] = None
        spilled = self._position_boundary(tw, top=boundary)
        cycles = (self._overflow_spill_cost if spilled
                  else self._overflow_free_cost)
        c = self.counters
        c.overflow_traps += 1
        if spilled:
            c.windows_spilled += 1
        c.trap_cycles += cycles

    def _position_boundary(self, tw: ModelThread, top: int) -> int:
        n = self.n_windows
        kinds = self.kinds
        relocatable = tw.prw if self._prw_boundary else self.reserved
        resident = tw.resident
        if kinds[top] == FRAME:
            limit = n - resident
            above_len = resident - 1
        else:
            limit = n - resident - 1
            above_len = resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = self.above(top)
        while count < limit and (kinds[w] == FREE or w == relocatable):
            count += 1
            w = self.above(w)
        saves = 0
        if not count:
            saves = self._make_free(self.above(top))
            if saves > 1:
                raise ModelError(
                    "boundary placement spilled %d windows" % saves)
            count = 1
            if kinds[top] == FRAME:
                above_len = tw.resident - 1
            else:
                above_len = tw.resident
        boundary = (top - count) % n
        if (relocatable is not None and relocatable != boundary
                and kinds[relocatable] == RESERVED):
            kinds[relocatable] = FREE
            self.tids[relocatable] = None
        kinds[boundary] = RESERVED
        if self._prw_boundary:
            self.tids[boundary] = tw.tid
            tw.prw = boundary
        else:
            self.tids[boundary] = None
            self.reserved = boundary
        self._set_wim_span(boundary, count + above_len)
        return saves

    def _set_wim_span(self, boundary: int, length: int) -> None:
        """All invalid except the cyclic span just above the boundary."""
        n = self.n_windows
        wim = [True] * n
        w = self.below(boundary)
        for __ in range(length):
            wim[w] = False
            w = self.below(w)
        self.wim = wim

    def handle_underflow(self, tw: ModelThread) -> None:
        if tw.resident != 1 or tw.bottom != self.cwp:
            raise ModelError(
                "underflow with resident=%d bottom=%s cwp=%d"
                % (tw.resident, tw.bottom, self.cwp))
        if tw.stored == 0:
            raise ModelError(
                "thread %d underflowed with an empty backing store" % tw.tid)
        tw.stored -= 1
        tw.depth -= 1
        # CWP, bottom, resident, WIM and occupancy all stay put.
        cycles = self._underflow_cost
        c = self.counters
        c.underflow_traps += 1
        c.windows_restored += 1
        c.trap_cycles += cycles


class SNPModel(SharingModel):
    """Sharing without PRW: one global reserved window."""

    kind = "SNP"

    def __init__(self, n_windows: int,
                 cost_model: Optional[CostModel] = None):
        super().__init__(n_windows, cost_model)
        self.kinds[0] = RESERVED
        self.wim = [True] * n_windows

    def context_switch(self, out_tw: Optional[ModelThread],
                       in_tw: ModelThread, flush_out: bool = False) -> None:
        saves = 0
        flushed = (self._flush_out_windows(out_tw, flush_out)
                   if flush_out else 0)
        if out_tw is not None and out_tw.resident > 0:
            out_tw.saved_outs = True
        if in_tw.has_windows:
            restores = 0
        else:
            top = self.reserved  # simple policy (§4.2)
            restores = self._install_single_frame(in_tw, top)
        # Re-site the reserved window above the incoming thread's top.
        top = in_tw.cwp
        assert top is not None
        n = self.n_windows
        kinds = self.kinds
        resident = in_tw.resident
        relocatable = self.reserved
        limit = n - resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = self.above(top)
        while count < limit and (kinds[w] == FREE or w == relocatable):
            count += 1
            w = self.above(w)
        if not count:
            saves += self._make_free(self.above(top))
            count = 1
            resident = in_tw.resident
        boundary = (top - count) % n
        if relocatable != boundary and kinds[relocatable] == RESERVED:
            kinds[relocatable] = FREE
            self.tids[relocatable] = None
        kinds[boundary] = RESERVED
        self.tids[boundary] = None
        self.reserved = boundary
        self._set_wim_span(boundary, count + resident - 1)
        if in_tw.saved_outs:
            in_tw.saved_outs = False
        self._run_thread(in_tw)
        cycles = (self.cost.snp_switch_cost(saves, restores)
                  + self.cost.flush_cost(flushed))
        saves += flushed
        self._record_switch(in_tw, saves, restores, cycles)


class SPModel(SharingModel):
    """Sharing with a private reserved window per thread."""

    kind = "SP"
    _prw_boundary = True

    def __init__(self, n_windows: int,
                 cost_model: Optional[CostModel] = None):
        if n_windows < 4:
            raise ModelError("SP needs at least 4 windows, got %d"
                             % n_windows)
        super().__init__(n_windows, cost_model)
        self._anchor = 0
        self.wim = [True] * n_windows

    def context_switch(self, out_tw: Optional[ModelThread],
                       in_tw: ModelThread, flush_out: bool = False) -> None:
        kinds = self.kinds
        saves = 0
        restores = 0
        allocated = False
        flushed = (self._flush_out_windows(out_tw, flush_out)
                   if flush_out else 0)
        if out_tw is not None and out_tw.has_windows:
            # snug the PRW down to immediately above the stack-top
            assert out_tw.cwp is not None and out_tw.prw is not None
            snug = self.above(out_tw.cwp)
            prw = out_tw.prw
            if prw != snug:
                if kinds[snug] != FREE:
                    raise ModelError(
                        "window %d above thread %d's top is occupied, "
                        "expected vacated" % (snug, out_tw.tid))
                kinds[prw] = FREE
                self.tids[prw] = None
                kinds[snug] = RESERVED
                self.tids[snug] = out_tw.tid
                out_tw.prw = snug
            self._anchor = out_tw.prw
        if in_tw.has_windows:
            if in_tw.prw is None or in_tw.prw != self.above(in_tw.cwp):
                raise ModelError(
                    "thread %d resident without a snug PRW (%s)"
                    % (in_tw.tid, in_tw.prw))
        else:
            allocated = True
            anchor = self._anchor
            if out_tw is not None and out_tw.prw is not None:
                anchor = out_tw.prw
            top = self.above(anchor)
            if kinds[top] != FREE:
                saves += self._make_free(top)
            restores = self._install_single_frame(in_tw, top)
        # Place the PRW above the top, granting any free run.
        top = in_tw.cwp
        assert top is not None
        n = self.n_windows
        resident = in_tw.resident
        relocatable = in_tw.prw
        limit = n - resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = self.above(top)
        while count < limit and (kinds[w] == FREE or w == relocatable):
            count += 1
            w = self.above(w)
        if not count:
            saves += self._make_free(self.above(top))
            count = 1
            resident = in_tw.resident
        boundary = (top - count) % n
        if (relocatable is not None and relocatable != boundary
                and kinds[relocatable] == RESERVED):
            kinds[relocatable] = FREE
            self.tids[relocatable] = None
        kinds[boundary] = RESERVED
        self.tids[boundary] = in_tw.tid
        in_tw.prw = boundary
        self._set_wim_span(boundary, count + resident - 1)
        if in_tw.saved_outs:
            in_tw.saved_outs = False
        self._run_thread(in_tw)
        cycles = (self.cost.sp_switch_cost(saves, restores, allocated)
                  + self.cost.flush_cost(flushed))
        saves += flushed
        self._record_switch(in_tw, saves, restores, cycles)

    def retire(self, tw: ModelThread) -> None:
        if tw.prw is not None and self._anchor == tw.prw:
            self._anchor = 0
        super().retire(tw)


_MODELS = {"NS": NSModel, "SNP": SNPModel, "SP": SPModel}


def make_model(scheme: str, n_windows: int,
               cost_model: Optional[CostModel] = None,
               **kwargs) -> WindowModel:
    try:
        cls = _MODELS[scheme.upper()]
    except KeyError:
        raise ModelError("unknown scheme %r" % scheme) from None
    return cls(n_windows, cost_model, **kwargs)
