"""Hot-path invariant linter over the simulator's own source.

The simulator keeps its inner loops fast by convention, not by
construction: trace emission must be gated behind a cached ``_tracing``
boolean so the untraced run pays one attribute load, telemetry buffers
are ``None`` unless sampling is on, per-step objects carry
``__slots__``, and the cycle-domain modules never read the wall clock
or the process-global RNG (determinism is what makes every run — and
every crash bundle — replayable).  Each of those conventions is an AST
pattern, so this linter enforces them:

* ``unguarded-emit`` — an ``events.emit(...)`` site not dominated by a
  recognized tracing guard (``if self._tracing:``, a cached
  ``events_on`` local, or an ``events is not None and events.active``
  test);
* ``unguarded-telemetry`` — a ``*_tel_*.append(...)`` site not
  dominated by an ``... is not None`` test naming the buffer;
* ``missing-slots`` — a class in one of the hot per-step modules with
  neither ``__slots__`` nor ``@dataclass(slots=True)`` (error classes
  are exempt: they are built on the cold path);
* ``wallclock-call`` — a ``time.*`` / ``random.*`` / ``datetime`` call
  or import-from in a deterministic module (``runtime/``, ``windows/``,
  ``core/``, ``isa/``); seeded ``random.Random(...)`` instances are
  allowed, the module-global RNG is not.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import ERROR, WARNING, AnalysisReport, Finding

#: modules whose classes are built or touched once per simulated step —
#: attribute storage must be slotted (paths relative to the package root)
HOT_SLOT_MODULES = frozenset({
    "runtime/ops.py",
    "runtime/thread.py",
    "runtime/streams.py",
    "runtime/scheduler.py",
    "windows/window_file.py",
    "windows/thread_windows.py",
    "windows/backing_store.py",
    "windows/occupancy.py",
    "isa/instructions.py",
})

#: top-level package directories that live in the cycle domain: no
#: wall-clock reads, no process-global randomness
DETERMINISTIC_DIRS = frozenset({"runtime", "windows", "core", "isa"})

_TIME_FUNCS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "thread_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
    "sleep",
})
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _module_rel(path: Path, root: Optional[Path]) -> Tuple[str, ...]:
    """Path components of ``path`` relative to the package root.

    Strips a leading ``src/`` and everything up to (and including) the
    last ``repro`` component, so both the real tree and booby-trap
    trees laid out as ``<tmp>/runtime/bad.py`` classify the same way.
    """
    parts: Tuple[str, ...]
    if root is not None:
        try:
            parts = path.resolve().relative_to(root.resolve()).parts
        except ValueError:
            parts = path.parts
    else:
        parts = path.parts
    if "repro" in parts:
        parts = parts[len(parts) - parts[::-1].index("repro"):]
    elif parts and parts[0] == "src":
        parts = parts[1:]
    return parts


class _Linter(ast.NodeVisitor):
    """One file's walk.  ``self.guards`` holds the tests of the ``If``
    statements whose *body* encloses the current node — the dominating
    conditions an emit/telemetry site may rely on."""

    def __init__(self, rel: Tuple[str, ...], display: str):
        self.rel = rel
        self.display = display
        self.rel_posix = "/".join(rel)
        self.deterministic = bool(rel) and rel[0] in DETERMINISTIC_DIRS
        self.hot_slots = self.rel_posix in HOT_SLOT_MODULES
        self.guards: List[ast.expr] = []
        self.findings: List[Finding] = []

    def _add(self, rule: str, severity: str, message: str, line: int,
             hint: str) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, message=message,
            file=self.display, line=line, hint=hint))

    # -- guard tracking ------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self.guards.append(node.test)
        for child in node.body:
            self.visit(child)
        self.guards.pop()
        for child in node.orelse:
            self.visit(child)

    # -- rule: missing-slots -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_slots and not self._is_exempt_class(node) \
                and not self._has_slots(node):
            self._add(
                "missing-slots", WARNING,
                "class %r in hot module %s has no __slots__"
                % (node.name, self.rel_posix), node.lineno,
                "add __slots__ = (...) or @dataclass(slots=True); "
                "instances are created on the per-step path")
        self.generic_visit(node)

    @staticmethod
    def _is_exempt_class(node: ast.ClassDef) -> bool:
        if node.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else "")
            if name.endswith(("Error", "Exception", "Warning")):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: Sequence[ast.expr] = ()
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = (stmt.target,)
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = decorator.func
                label = name.attr if isinstance(name, ast.Attribute) else (
                    name.id if isinstance(name, ast.Name) else "")
                if label == "dataclass":
                    for kw in decorator.keywords:
                        if (kw.arg == "slots"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True):
                            return True
        return False

    # -- rule: wallclock-call ------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.deterministic and node.module in ("time", "random"):
            names = [alias.name for alias in node.names
                     if alias.name not in _RANDOM_ALLOWED]
            if names:
                self._add(
                    "wallclock-call", ERROR,
                    "deterministic module imports %s from %r"
                    % (", ".join(names), node.module), node.lineno,
                    "cycle-domain code must not read the wall clock or "
                    "the process-global RNG; thread timing through the "
                    "CostModel or a seeded random.Random")
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        base = value.id if isinstance(value, ast.Name) else (
            value.attr if isinstance(value, ast.Attribute) else "")
        bad = (
            (base == "time" and func.attr in _TIME_FUNCS)
            or (base == "random" and func.attr not in _RANDOM_ALLOWED)
            or (base == "datetime" and func.attr in _DATETIME_FUNCS))
        if bad:
            self._add(
                "wallclock-call", ERROR,
                "deterministic module calls %s.%s()" % (base, func.attr),
                node.lineno,
                "cycle-domain code must be replay-identical; take cycle "
                "counts from the CostModel and randomness from a seeded "
                "random.Random")

    # -- rules: unguarded-emit / unguarded-telemetry -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            self._check_wallclock(node)
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "emit" and self._is_event_receiver(func.value):
                if not any(self._is_trace_guard(g) for g in self.guards):
                    self._add(
                        "unguarded-emit", ERROR,
                        "events.emit() call not guarded by a tracing "
                        "check", node.lineno,
                        "wrap in `if self._tracing:` (or cache "
                        "`events_on = self._tracing`); the untraced hot "
                        "path must not build TraceEvent kwargs")
            elif func.attr == "append" and self._mentions_tel(func.value):
                if not any(self._is_tel_guard(g) for g in self.guards):
                    self._add(
                        "unguarded-telemetry", ERROR,
                        "telemetry buffer append not guarded by an "
                        "`is not None` check", node.lineno,
                        "telemetry buffers are None unless sampling is "
                        "on; guard with `if self._tel_x is not None:`")
        self.generic_visit(node)

    @staticmethod
    def _is_event_receiver(value: ast.expr) -> bool:
        """True for ``self.events`` / ``events`` / ``x.events`` — the
        EventBus attribute spelled the way the codebase spells it."""
        if isinstance(value, ast.Attribute):
            return value.attr == "events"
        if isinstance(value, ast.Name):
            return value.id == "events"
        return False

    @staticmethod
    def _is_trace_guard(test: ast.expr) -> bool:
        saw_not_none = False
        saw_events = False
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute):
                if "_tracing" in sub.attr or sub.attr == "active":
                    return True
                if sub.attr == "events":
                    saw_events = True
            elif isinstance(sub, ast.Name):
                if "tracing" in sub.id or sub.id == "events_on":
                    return True
                if sub.id == "events":
                    saw_events = True
            elif isinstance(sub, ast.Compare):
                if any(isinstance(op, ast.IsNot) for op in sub.ops) and any(
                        isinstance(c, ast.Constant) and c.value is None
                        for c in sub.comparators):
                    saw_not_none = True
        return saw_events and saw_not_none

    @staticmethod
    def _mentions_tel(value: ast.expr) -> bool:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Attribute) and "_tel_" in sub.attr:
                return True
            if isinstance(sub, ast.Name) and "_tel_" in sub.id:
                return True
        return False

    @classmethod
    def _is_tel_guard(cls, test: ast.expr) -> bool:
        if not cls._mentions_tel(test):
            return False
        for sub in ast.walk(test):
            if isinstance(sub, ast.Compare):
                if any(isinstance(op, ast.IsNot) for op in sub.ops) and any(
                        isinstance(c, ast.Constant) and c.value is None
                        for c in sub.comparators):
                    return True
        return False


def lint_source(source: str, rel: Tuple[str, ...],
                display: str) -> List[Finding]:
    """Lint one module's source; ``rel`` classifies it (see rules)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            rule="syntax-error", severity=ERROR,
            message="cannot parse: %s" % exc, file=display,
            line=exc.lineno or 0, hint="fix the syntax error first")]
    visitor = _Linter(rel, display)
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: Iterable[Union[str, Path]],
               root: Optional[Union[str, Path]] = None) -> AnalysisReport:
    """Lint files and/or directory trees into one report.

    ``root`` anchors module classification (defaults to the first
    directory argument, or the file's own parent) so booby-trap trees
    under a tmp dir classify like the real package.
    """
    report = AnalysisReport(tool="repro.analysis.linter")
    root_path = Path(root) if root is not None else None
    files: List[Tuple[Path, Optional[Path]]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            anchor = root_path if root_path is not None else path
            files.extend((f, anchor) for f in sorted(path.rglob("*.py")))
        else:
            anchor = root_path if root_path is not None else path.parent
            files.append((path, anchor))
    checked = 0
    for path, anchor in files:
        rel = _module_rel(path, anchor)
        display = "/".join(rel) if rel else str(path)
        try:
            source = path.read_text()
        except OSError as exc:
            report.add(Finding(
                rule="unreadable", severity=ERROR,
                message="cannot read: %s" % exc, file=str(path)))
            continue
        checked += 1
        report.extend(lint_source(source, rel, display))
    report.meta["files_checked"] = checked
    report.sort()
    return report
