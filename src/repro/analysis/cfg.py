"""Control-flow graph + call graph over an assembled ISA program.

The unit of analysis is the *function*: the set of instructions
reachable from an entry index without following ``call`` edges.
``call`` transfers control to its label and the callee returns to the
call site + 1 (``%o7``/``%i7`` linkage), so inside a function a call
instruction's successor is the next instruction; the inter-function
edge goes into the call graph instead.  ``ret``/``retl``/``retadd``
and ``halt`` terminate a path; branches add their target (and, for
conditional branches, the fall-through).

Entry points are the targets of ``call`` instructions plus any label
used as a thread entry (``Machine.add_thread``'s ``entry``, by default
``"start"``) — labels that are only branch targets are interior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.assembler import Program
from repro.isa.instructions import BRANCH_OPS, Instruction

#: ops that terminate the current path (control leaves the function or
#: the thread); ``ret``/``retadd`` also pop a window, tracked in depth.py
RETURN_OPS = frozenset(("ret", "retl", "retadd"))
TERMINAL_OPS = frozenset(("halt",))
#: net window-depth effect of an op (save pushes, restore/ret/retadd pop)
DEPTH_DELTA = {"save": +1, "restore": -1, "ret": -1, "retadd": -1}


def successors(program: Program, index: int) -> List[int]:
    """Intra-function successor indices of the instruction at ``index``."""
    instr = program.instructions[index]
    op = instr.op
    if op in RETURN_OPS or op in TERMINAL_OPS:
        return []
    if op == "ba":
        return [instr.label]
    if op in BRANCH_OPS:
        return [instr.label, index + 1]
    # ``call`` returns to the next instruction; everything else falls
    # through.  A successor one past the end is kept so the verifier
    # can flag the fall-off-the-end path.
    return [index + 1]


@dataclass
class FunctionCFG:
    """One function: entry index, reachable body, per-index successors."""

    entry: int
    name: str
    body: Set[int] = field(default_factory=set)
    succ: Dict[int, List[int]] = field(default_factory=dict)
    #: call sites inside this function: (index, callee entry index)
    calls: List[Tuple[int, int]] = field(default_factory=list)
    #: reachable indices one past the program end (fall-off paths)
    falls_off: List[int] = field(default_factory=list)

    def instruction(self, program: Program, index: int) -> Instruction:
        return program.instructions[index]


@dataclass
class ProgramCFG:
    """All functions of a program plus the call graph between them."""

    program: Program
    functions: Dict[int, FunctionCFG] = field(default_factory=dict)
    #: entry index -> set of callee entry indices
    call_graph: Dict[int, Set[int]] = field(default_factory=dict)
    #: indices never reached from any entry
    unreachable: List[int] = field(default_factory=list)

    def function_named(self, name: str) -> Optional[FunctionCFG]:
        for fn in self.functions.values():
            if fn.name == name:
                return fn
        return None

    def recursive_entries(self) -> Set[int]:
        """Entries on a call-graph cycle (directly or mutually recursive)."""
        recursive: Set[int] = set()
        for entry in self.call_graph:
            # DFS from each callee of ``entry`` looking for a path back
            stack = list(self.call_graph.get(entry, ()))
            seen: Set[int] = set()
            while stack:
                node = stack.pop()
                if node == entry:
                    recursive.add(entry)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.call_graph.get(node, ()))
        return recursive


def _entry_name(program: Program, index: int) -> str:
    names = sorted(name for name, target in program.labels.items()
                   if target == index)
    return names[0] if names else ("@%d" % index)


def build_cfg(program: Program,
              thread_entries: Sequence[str] = ("start",)) -> ProgramCFG:
    """Build the per-function CFGs and the call graph.

    ``thread_entries`` are the labels threads start at; labels missing
    from the program are ignored here (the machine raises on them at
    ``add_thread`` time, and the verifier reports them separately).
    """
    instrs = program.instructions
    n = len(instrs)
    entries: Set[int] = set()
    for name in thread_entries:
        target = program.labels.get(name)
        if target is not None and target < n:
            entries.add(target)
    for instr in instrs:
        if instr.op == "call" and instr.label is not None:
            entries.add(instr.label)
    cfg = ProgramCFG(program=program)
    reachable_any: Set[int] = set()
    for entry in sorted(entries):
        fn = FunctionCFG(entry=entry, name=_entry_name(program, entry))
        stack = [entry]
        while stack:
            index = stack.pop()
            if index in fn.body or not 0 <= index < n:
                continue
            fn.body.add(index)
            instr = instrs[index]
            if instr.op == "call" and instr.label is not None:
                fn.calls.append((index, instr.label))
            succ = successors(program, index)
            fn.succ[index] = succ
            for nxt in succ:
                if nxt >= n:
                    fn.falls_off.append(index)
                else:
                    stack.append(nxt)
        cfg.functions[entry] = fn
        cfg.call_graph[entry] = {callee for __, callee in fn.calls}
        reachable_any |= fn.body
    cfg.unreachable = [i for i in range(n) if i not in reachable_any]
    return cfg
