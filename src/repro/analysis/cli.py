"""``python -m repro.analysis`` — check programs/workloads, lint source.

Exit codes: 0 when every report is clean, 1 when any finding survives,
2 on usage errors.  CI runs both commands and fails on any finding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.linter import lint_paths
from repro.analysis.report import AnalysisReport, merge_reports
from repro.analysis.topology import analyze_workload_config
from repro.analysis.verifier import ThreadSpec, verify_corpus, verify_program


def _emit(report: AnalysisReport, as_json: bool) -> int:
    if as_json:
        print(report.to_json(indent=2))
    else:
        for finding in report.findings:
            print(finding.describe())
        print(report.summary())
    return 0 if report.clean else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    report = lint_paths(args.paths, root=args.root)
    return _emit(report, args.json)


def _cmd_check(args: argparse.Namespace) -> int:
    reports: List[AnalysisReport] = []
    if args.corpus or not (args.files or args.workloads):
        reports.append(verify_corpus(
            n_windows=args.windows, scheme=args.scheme,
            predict=not args.no_predict))
    for path in args.files:
        try:
            source = open(path).read()
        except OSError as exc:
            print("cannot read %s: %s" % (path, exc), file=sys.stderr)
            return 2
        threads = ([ThreadSpec(entry) for entry in args.entry]
                   if args.entry else [ThreadSpec()])
        reports.append(verify_program(
            source, name=path, threads=threads,
            n_windows=args.windows, scheme=args.scheme,
            predict=not args.no_predict))
    if args.workloads:
        from repro.faults.workloads import WORKLOADS
        for name in sorted(WORKLOADS):
            workload_report = analyze_workload_config(
                {"workload": name}, pedantic=args.pedantic)
            workload_report.meta = {"workload": name,
                                    **workload_report.meta}
            reports.append(workload_report)
    merged = merge_reports("repro.analysis", *reports)
    merged.meta["reports"] = [r.meta for r in reports]
    return _emit(merged, args.json)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static analysis for guest programs, stream "
                    "workloads and the simulator's own hot paths")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="verify guest programs / workload topologies")
    check.add_argument("files", nargs="*",
                       help="assembly source files (default: the "
                            "committed program corpus)")
    check.add_argument("--corpus", action="store_true",
                       help="verify the committed program corpus")
    check.add_argument("--workloads", action="store_true",
                       help="analyze every registered stream workload")
    check.add_argument("--scheme", default="SP",
                       choices=("NS", "SNP", "SP"))
    check.add_argument("--windows", type=int, default=8)
    check.add_argument("--entry", action="append", default=[],
                       help="thread entry label (repeatable; one "
                            "thread per flag)")
    check.add_argument("--no-predict", action="store_true",
                       help="skip abstract interpretation (structural "
                            "passes only)")
    check.add_argument("--pedantic", action="store_true",
                       help="report candidate (not just guaranteed) "
                            "workload hazards as findings")
    check.add_argument("--json", action="store_true")
    check.set_defaults(func=_cmd_check)

    lint = sub.add_parser(
        "lint", help="hot-path invariant lint over simulator source")
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--root", default=None,
                      help="package root for module classification")
    lint.add_argument("--json", action="store_true")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
