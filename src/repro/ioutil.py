"""Shared filesystem helpers (atomic writes)."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file-plus-rename so a parallel
    or interrupted writer can never leave a truncated file behind."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
