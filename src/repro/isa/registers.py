"""SPARC register names and their mapping onto the windowed file.

``%g0``–``%g7`` are globals (``%g0`` hardwired to zero), ``%o`` are the
current window's outs, ``%l`` its locals, ``%i`` its ins.  Synonyms:
``%sp`` = ``%o6``, ``%fp`` = ``%i6``.
"""

from __future__ import annotations

from typing import Tuple

GLOBAL = "g"
OUT = "o"
LOCAL = "l"
IN = "i"

_SYNONYMS = {
    "%sp": "%o6",
    "%fp": "%i6",
}


class RegisterError(ValueError):
    """Bad register name."""


def parse_register(name: str) -> Tuple[str, int]:
    """``"%l3"`` -> ``("l", 3)``; raises RegisterError otherwise."""
    name = _SYNONYMS.get(name, name)
    if len(name) != 3 or name[0] != "%":
        raise RegisterError("bad register %r" % name)
    bank, idx = name[1], name[2]
    if bank not in "goli" or not idx.isdigit():
        raise RegisterError("bad register %r" % name)
    index = int(idx)
    if index > 7:
        raise RegisterError("bad register index %r" % name)
    return bank, index


def read_register(wf, bank: str, index: int) -> int:
    """Read through the current window (the hardware view)."""
    if bank == GLOBAL:
        return wf.read_global(index)
    if bank == OUT:
        return wf.read_out(index)
    if bank == LOCAL:
        return wf.read_local(index)
    if bank == IN:
        return wf.read_in(index)
    raise RegisterError("bad bank %r" % bank)


def write_register(wf, bank: str, index: int, value: int) -> None:
    if bank == GLOBAL:
        wf.write_global(index, value)
    elif bank == OUT:
        wf.write_out(index, value)
    elif bank == LOCAL:
        wf.write_local(index, value)
    elif bank == IN:
        wf.write_in(index, value)
    else:
        raise RegisterError("bad bank %r" % bank)
