"""Two-pass assembler for the micro-SPARC.

Syntax (one instruction per line; ``;`` and ``!`` start comments)::

    factorial:
        cmp   %i0, 2
        bl    base
        save                     ; new window for the recursive frame
        add   %i0, -1, %o0
        call  factorial
        mov   %o0, %l1
        ...
    base:
        mov   1, %i0
        retl

Operands follow SPARC order: ``op rs1, rs2_or_imm, rd``.  Memory
operands are ``[%reg]``, ``[%reg + imm]`` or ``[%reg - imm]``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.isa.instructions import (
    ALL_OPS,
    ALU_OPS,
    BRANCH_OPS,
    Instruction,
    Operand,
)
from repro.isa.registers import RegisterError, parse_register


class AssemblyError(Exception):
    """Syntax or semantic error in assembly source."""


class Program:
    """Assembled program: instructions plus the label table."""

    def __init__(self, instructions: List[Instruction],
                 labels: Dict[str, int], source: str):
        self.instructions = instructions
        self.labels = labels
        self.source = source

    def entry(self, label: str = "start") -> int:
        if label not in self.labels:
            raise AssemblyError("no label %r in program" % label)
        return self.labels[label]

    def __len__(self) -> int:
        return len(self.instructions)


_MEM_RE = re.compile(
    r"^\[\s*(%\w\w)\s*(?:([+-])\s*(\w+))?\s*\]$")


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError("bad integer %r" % text)


def _parse_operand(text: str, line_no: int) -> Operand:
    text = text.strip()
    mem = _MEM_RE.match(text)
    if mem:
        try:
            bank, index = parse_register(mem.group(1))
        except RegisterError as err:
            raise AssemblyError("line %d: %s" % (line_no, err))
        offset = 0
        if mem.group(3) is not None:
            offset = _parse_int(mem.group(3))
            if mem.group(2) == "-":
                offset = -offset
        return Operand.mem(bank, index, offset)
    if text.startswith("%"):
        try:
            bank, index = parse_register(text)
        except RegisterError as err:
            raise AssemblyError("line %d: %s" % (line_no, err))
        return Operand.reg(bank, index)
    return Operand.imm(_parse_int(text))


def _split_operands(rest: str) -> List[str]:
    # split on commas not inside brackets
    parts, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur and "".join(cur).strip():
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


_EXPECTED_COUNTS = {
    "mov": (2,), "cmp": (2,), "ld": (2,), "st": (2,),
    "save": (0, 3), "restore": (0, 3), "retadd": (3,),
    "ret": (0,), "retl": (0,), "nop": (0,), "halt": (0,),
    "yield": (0,),
}


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`Program`."""
    labels: Dict[str, int] = {}
    pending: List[Tuple[int, str, List[str]]] = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;!]", raw, 1)[0].strip()
        if not line:
            continue
        while True:
            match = re.match(r"^(\w+):\s*(.*)$", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblyError(
                    "line %d: duplicate label %r" % (line_no, label))
            labels[label] = len(pending)
            line = match.group(2).strip()
        if not line:
            continue
        fields = line.split(None, 1)
        op = fields[0].lower()
        if op not in ALL_OPS:
            raise AssemblyError("line %d: unknown op %r" % (line_no, op))
        rest = fields[1] if len(fields) > 1 else ""
        pending.append((line_no, op, _split_operands(rest)))

    instructions: List[Instruction] = []
    for line_no, op, texts in pending:
        label = None
        if op in BRANCH_OPS or op == "call":
            if len(texts) != 1:
                raise AssemblyError(
                    "line %d: %s needs exactly one target" % (line_no, op))
            label = texts[0]
            if label not in labels:
                raise AssemblyError(
                    "line %d: undefined label %r" % (line_no, label))
            instructions.append(
                Instruction(op, (), label=label, line=line_no))
            continue
        operands = tuple(_parse_operand(t, line_no) for t in texts)
        expected = (_EXPECTED_COUNTS.get(op)
                    if op not in ALU_OPS else (3,))
        if expected is not None and len(operands) not in expected:
            raise AssemblyError(
                "line %d: %s takes %s operands, got %d"
                % (line_no, op, " or ".join(map(str, expected)),
                   len(operands)))
        _validate(op, operands, line_no)
        instructions.append(Instruction(op, operands, line=line_no))

    program = Program(instructions, labels, source)
    # resolve labels to instruction indices
    for instr in program.instructions:
        if instr.label is not None:
            instr.label = labels[instr.label]  # type: ignore[assignment]
    return program


def _validate(op: str, operands, line_no: int) -> None:
    def need(idx, kind, what):
        if operands[idx].kind != kind:
            raise AssemblyError(
                "line %d: %s operand %d must be a %s"
                % (line_no, op, idx + 1, what))

    if op in ALU_OPS or op in ("restore", "save", "retadd"):
        if len(operands) == 3:
            need(0, Operand.REG, "register")
            if operands[1].kind == Operand.MEM:
                raise AssemblyError(
                    "line %d: %s cannot take memory operands"
                    % (line_no, op))
            need(2, Operand.REG, "register")
    elif op == "mov":
        need(1, Operand.REG, "register")
    elif op == "ld":
        need(0, Operand.MEM, "memory reference")
        need(1, Operand.REG, "register")
    elif op == "st":
        need(0, Operand.REG, "register")
        need(1, Operand.MEM, "memory reference")
