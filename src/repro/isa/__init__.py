"""A micro-SPARC: assembler and interpreter over the window simulator.

This subsystem validates the window-management schemes at the
instruction level: ``save`` and ``restore`` are real instructions whose
traps are handled by the same :mod:`repro.core` scheme objects the
multithreading runtime uses, register access goes through the real
windowed register file (so the in/out overlap, the in-place underflow
restore, and the restore-as-add emulation of §4.3 are all exercised
with live data), and multiple hardware threads can share the window
file, switching on a ``yield`` instruction.

Deliberate simplifications versus a real SPARC (documented in
DESIGN.md): no delay slots, word-addressed memory helpers, spilled
windows go to the per-thread backing store rather than through %sp,
and only the integer subset needed by the evaluation is implemented.
"""

from repro.isa.assembler import AssemblyError, Program, assemble
from repro.isa.machine import Machine, MachineFault
from repro.isa.registers import parse_register

__all__ = [
    "AssemblyError",
    "Program",
    "assemble",
    "Machine",
    "MachineFault",
    "parse_register",
]
