"""Instruction objects and the micro-SPARC instruction set."""

from __future__ import annotations

from typing import Optional, Tuple

#: three-operand ALU ops: op rs1, rs2_or_imm, rd
ALU_OPS = ("add", "sub", "and", "or", "xor", "sll", "srl", "smul")

#: conditional branches on the last ``cmp`` (signed)
BRANCH_OPS = ("ba", "be", "bne", "bg", "bge", "bl", "ble")

#: everything else
OTHER_OPS = ("mov", "cmp", "ld", "st", "save", "restore",
             "call", "ret", "retadd", "retl", "nop", "halt", "yield")

ALL_OPS = ALU_OPS + BRANCH_OPS + OTHER_OPS


class Operand:
    """Register, immediate, or memory reference."""

    __slots__ = ("kind", "bank", "index", "value", "offset")

    REG = "reg"
    IMM = "imm"
    MEM = "mem"

    def __init__(self, kind: str, bank: str = "", index: int = 0,
                 value: int = 0, offset: int = 0):
        self.kind = kind
        self.bank = bank
        self.index = index
        self.value = value
        self.offset = offset

    @classmethod
    def reg(cls, bank: str, index: int) -> "Operand":
        return cls(cls.REG, bank=bank, index=index)

    @classmethod
    def imm(cls, value: int) -> "Operand":
        return cls(cls.IMM, value=value)

    @classmethod
    def mem(cls, bank: str, index: int, offset: int) -> "Operand":
        return cls(cls.MEM, bank=bank, index=index, offset=offset)

    def __repr__(self) -> str:
        if self.kind == self.REG:
            return "%%%s%d" % (self.bank, self.index)
        if self.kind == self.IMM:
            return str(self.value)
        return "[%%%s%d %+d]" % (self.bank, self.index, self.offset)


class Instruction:
    """One assembled instruction."""

    __slots__ = ("op", "operands", "label", "line")

    def __init__(self, op: str, operands: Tuple[Operand, ...] = (),
                 label: Optional[str] = None, line: int = 0):
        self.op = op
        self.operands = operands
        self.label = label  # branch/call target (resolved to an index)
        self.line = line

    def __repr__(self) -> str:
        parts = [self.op]
        if self.operands:
            parts.append(", ".join(repr(o) for o in self.operands))
        if self.label is not None:
            parts.append("-> %s" % self.label)
        return " ".join(parts)
