"""Disassembler: turn an assembled :class:`Program` back into source.

Round-tripping (assemble → disassemble → assemble) is a strong
assembler test, and the output is used by the machine's fault messages
to show the neighbourhood of a bad PC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.assembler import Program, assemble
from repro.isa.instructions import Instruction, Operand


def format_operand(operand: Operand) -> str:
    if operand.kind == Operand.REG:
        return "%%%s%d" % (operand.bank, operand.index)
    if operand.kind == Operand.IMM:
        return str(operand.value)
    if operand.offset == 0:
        return "[%%%s%d]" % (operand.bank, operand.index)
    sign = "+" if operand.offset >= 0 else "-"
    return "[%%%s%d %s %d]" % (operand.bank, operand.index, sign,
                               abs(operand.offset))


def format_instruction(instr: Instruction,
                       index_labels: Dict[int, str]) -> str:
    if instr.label is not None:
        target = index_labels.get(instr.label, "L%d" % instr.label)
        return "%-8s %s" % (instr.op, target)
    if not instr.operands:
        return instr.op
    return "%-8s %s" % (instr.op, ", ".join(
        format_operand(o) for o in instr.operands))


def disassemble(program: Program) -> str:
    """Source text that re-assembles to an equivalent program."""
    index_labels: Dict[int, str] = {}
    for label, index in sorted(program.labels.items()):
        # keep one label per index; prefer the first alphabetically
        index_labels.setdefault(index, label)
    # branch/call targets that lost their label in the table need one
    for instr in program.instructions:
        if instr.label is not None and instr.label not in index_labels:
            index_labels[instr.label] = "L%d" % instr.label
    lines: List[str] = []
    for index, instr in enumerate(program.instructions):
        if index in index_labels:
            lines.append("%s:" % index_labels[index])
        lines.append("    " + format_instruction(instr, index_labels))
    # labels pointing one past the end (rare but legal)
    end = len(program.instructions)
    if end in index_labels:
        lines.append("%s:" % index_labels[end])
    return "\n".join(lines) + "\n"


def roundtrip(program: Program) -> Program:
    """Disassemble and re-assemble (used by tests)."""
    return assemble(disassemble(program))
