"""The micro-SPARC interpreter.

Each hardware thread has its own program counter, condition codes,
(shadowed) global registers and window state; all threads share the
physical window file, the memory, and the bound window-management
scheme.  ``save``/``restore`` execute through
:class:`repro.windows.cpu.WindowCPU`, so window traps — including the
in-place underflow restore and the emulated restore-as-add of §4.3 —
happen exactly as in the multithreading runtime, but now with live
register data produced by real instructions.

Opcode dispatch is a table of bound handlers precomputed at machine
construction (the threaded-code technique of interpreter lore), not an
if/elif ladder: the fetch loop does one dict lookup and one call per
instruction.  Each handler returns a falsy value to continue the batch,
or a batch-exit reason code (:mod:`repro.runtime.batch`) when it ended
the current thread's quantum: ``EXIT_DONE`` from ``halt``,
``EXIT_YIELDED`` from a ``yield`` that switched.  The fetch loop itself
reports ``EXIT_BUDGET`` when the caller's instruction budget runs dry
mid-batch — the same exit protocol the runtime kernel's batched core
uses, so the two interpreters can share tooling.
"""

from __future__ import annotations

import operator
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.core import make_scheme
from repro.isa.assembler import Program
from repro.isa.instructions import ALU_OPS, Operand
from repro.isa.registers import read_register, write_register
from repro.metrics.counters import Counters
from repro.runtime.batch import EXIT_BUDGET, EXIT_DONE, EXIT_YIELDED
from repro.windows.cpu import WindowCPU
from repro.windows.thread_windows import ThreadWindows

WORD = 4

_ALU_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": operator.add,
    "sub": operator.sub,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "sll": operator.lshift,
    "srl": operator.rshift,
    "smul": operator.mul,
}

_BRANCH_TESTS: Dict[str, Callable[[int], bool]] = {
    "be": lambda cc: cc == 0,
    "bne": lambda cc: cc != 0,
    "bg": lambda cc: cc > 0,
    "bge": lambda cc: cc >= 0,
    "bl": lambda cc: cc < 0,
    "ble": lambda cc: cc <= 0,
}


class MachineFault(Exception):
    """Illegal execution (bad opcode state, budget exhaustion, ...)."""


class HWThread:
    """One hardware thread context."""

    __slots__ = ("tid", "name", "pc", "args", "cc", "windows",
                 "shadow_globals", "done", "exit_value", "instructions")

    def __init__(self, tid: int, name: str, entry: int, args):
        self.tid = tid
        self.name = name
        self.pc = entry
        self.args = tuple(args)
        self.cc = 0  # last cmp result (signed difference)
        self.windows = ThreadWindows(tid)
        self.shadow_globals: List[int] = [0] * 8
        self.done = False
        self.exit_value: Optional[int] = None
        self.instructions = 0

    def __repr__(self) -> str:
        return "HWThread(%d, %r, pc=%d, done=%s)" % (
            self.tid, self.name, self.pc, self.done)


class Machine:
    """Interpreter for an assembled :class:`Program`."""

    def __init__(self, program: Program, n_windows: int = 8,
                 scheme: str = "SP", counters: Optional[Counters] = None,
                 analyze: bool = False,
                 thread_entries=("start",),
                 backend: Optional[str] = None):
        if analyze:
            # opt-in pre-run gate: structural verification (control
            # flow, depth balance, stale reads) before any execution;
            # raises AnalysisError carrying the report on any error
            from repro.analysis.verifier import verify_program
            verify_program(
                program, name="<machine>", thread_entries=thread_entries,
                n_windows=n_windows, scheme=scheme, predict=False,
            ).raise_if_errors("program")
        self.program = program
        self.counters = counters if counters is not None else Counters()
        self.cpu = WindowCPU(n_windows, counters=self.counters)
        if scheme.upper() == "NS":
            self.scheme = make_scheme("NS", self.cpu)
        else:
            self.scheme = make_scheme(scheme, self.cpu)
        self.memory: Dict[int, int] = {}
        self.threads: List[HWThread] = []
        self.ready: deque = deque()
        self.current: Optional[HWThread] = None
        self._dispatch = self._build_dispatch()
        #: optional cycle-domain sampling profiler; None keeps the
        #: fetch loop's guard a single hoisted-local check
        self._profiler = None
        self.telemetry = None
        from repro.runtime import backend as backend_mod
        self.backend = backend_mod.select_backend(backend)
        self._fast = (backend_mod.load_fast()
                      if self.backend == "compiled" else None)

    def _build_dispatch(self) -> Dict[str, Callable]:
        """Precompute the opcode -> bound-handler table."""
        dispatch: Dict[str, Callable] = {}
        for op in ALU_OPS:
            dispatch[op] = self._make_alu(_ALU_FUNCS[op])
        for op, test in _BRANCH_TESTS.items():
            dispatch[op] = self._make_branch(test)
        dispatch.update({
            "mov": self._op_mov,
            "cmp": self._op_cmp,
            "ba": self._op_ba,
            "ld": self._op_ld,
            "st": self._op_st,
            "save": self._op_save,
            "restore": self._op_restore,
            "call": self._op_call,
            "retl": self._op_retl,
            "ret": self._op_ret,
            "retadd": self._op_retadd,
            "nop": self._op_nop,
            "halt": self._op_halt,
            "yield": self._op_yield,
        })
        return dispatch

    # -- setup -------------------------------------------------------------

    def add_thread(self, entry: str = "start", args=(),
                   name: str = "") -> HWThread:
        thread = HWThread(len(self.threads), name or "hw%d"
                          % len(self.threads), self.program.entry(entry),
                          args)
        self.threads.append(thread)
        self.scheme.register(thread.windows)
        self.ready.append(thread)
        return thread

    def attach_telemetry(self, telemetry) -> None:
        """Arm aggregate metrics, mirroring ``Kernel.attach_telemetry``:
        the scheme gets its switch/trap/occupancy histograms and the
        fetch loop gets per-opcode cycle attribution."""
        from repro.metrics.telemetry import arm_scheme_histograms

        self.telemetry = telemetry
        arm_scheme_histograms(telemetry, self.scheme,
                              self.cpu.n_windows)
        profiler = telemetry.profiler
        if profiler is not None:
            profiler.bind(self.cpu)
        self._profiler = profiler

    # -- memory helpers ------------------------------------------------------

    def poke(self, addr: int, value: int) -> None:
        self.memory[addr] = value

    def peek(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    # -- execution -------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> Dict[str, Optional[int]]:
        steps = 0
        while self.ready or self.current is not None:
            if self.current is None:
                self._switch_to(self.ready.popleft())
            executed, reason = self._run_thread(max_steps - steps)
            steps += executed
            if steps >= max_steps:
                # Checked on every batch boundary, not only on
                # EXIT_BUDGET, so a batch that halts or yields exactly
                # on the budget line reports the same way.
                raise MachineFault(
                    "step budget of %d exhausted (last batch: %s)"
                    % (max_steps,
                       "budget" if reason is EXIT_BUDGET else "event"))
        self.counters.fold_thread_stats(t.windows for t in self.threads)
        return {t.name: t.exit_value for t in self.threads}

    def _switch_to(self, thread: HWThread) -> None:
        out = self.current
        if out is not None:
            out.shadow_globals = list(self.cpu.wf.global_regs)
        self.scheme.context_switch(
            out.windows if out is not None else None, thread.windows)
        first_run = thread.instructions == 0
        self.cpu.wf.global_regs[:] = thread.shadow_globals
        if first_run:
            for i, arg in enumerate(thread.args[:6]):
                self.cpu.wf.write_in(i, arg)
        self.current = thread

    def _run_thread(self, budget: int):
        """Run the current thread's batch; returns ``(executed, reason)``.

        ``reason`` is the batch-exit code: whatever the quantum-ending
        handler returned (``EXIT_DONE``, ``EXIT_YIELDED``), or
        ``EXIT_BUDGET`` when the fetch loop consumed the caller's whole
        instruction budget without an exit event.
        """
        thread = self.current
        assert thread is not None
        if (self._fast is not None and self._profiler is None
                and budget < (1 << 62)):
            # Compiled twin of the loop below (bit-identical; pinned by
            # tests/isa against this reference).  The per-op profiler
            # hook needs the step-granular path, so a bound profiler
            # keeps the run here.
            return self._fast.machine_run(self, budget)
        instrs = self.program.instructions
        n_instrs = len(instrs)
        dispatch_get = self._dispatch.get
        counters = self.counters
        prof = self._profiler
        # countdown hoisted into a local, residue persisted in the
        # finally (see CycleProfiler: it must survive short quanta)
        prof_cd = prof._cd if prof is not None else 0
        executed = 0
        try:
            while executed < budget:
                pc = thread.pc
                if not 0 <= pc < n_instrs:
                    raise MachineFault(
                        "%s: pc %d out of range" % (thread.name, pc))
                instr = instrs[pc]
                executed += 1
                thread.instructions += 1
                if prof is not None:
                    prof_cd -= 1
                    if prof_cd <= 0:
                        prof_cd = prof.check_every
                        prof.check_op(thread.name, instr.op, counters)
                handler = dispatch_get(instr.op)
                if handler is None:  # pragma: no cover - assembler rejects
                    raise MachineFault("unknown op %r" % instr.op)
                reason = handler(thread, instr)
                if reason:
                    return executed, reason
            return executed, EXIT_BUDGET
        finally:
            if prof is not None:
                prof._cd = prof_cd

    # -- opcode handlers (one entry each in the dispatch table) --------------

    def _make_alu(self, fn: Callable[[int, int], int]) -> Callable:
        def run_alu(thread: HWThread, instr) -> bool:
            ops = instr.operands
            self._write(ops[2], fn(self._value(ops[0]), self._value(ops[1])))
            self.counters.compute_cycles += 1
            thread.pc += 1
            return False
        return run_alu

    def _make_branch(self, test: Callable[[int], bool]) -> Callable:
        def run_branch(thread: HWThread, instr) -> bool:
            thread.pc = instr.label if test(thread.cc) else thread.pc + 1
            self.counters.compute_cycles += 1
            return False
        return run_branch

    def _op_mov(self, thread: HWThread, instr) -> bool:
        self._write(instr.operands[1], self._value(instr.operands[0]))
        self.counters.compute_cycles += 1
        thread.pc += 1
        return False

    def _op_cmp(self, thread: HWThread, instr) -> bool:
        thread.cc = (self._value(instr.operands[0])
                     - self._value(instr.operands[1]))
        self.counters.compute_cycles += 1
        thread.pc += 1
        return False

    def _op_ba(self, thread: HWThread, instr) -> bool:
        thread.pc = instr.label
        self.counters.compute_cycles += 1
        return False

    def _op_ld(self, thread: HWThread, instr) -> bool:
        mem = instr.operands[0]
        wf = self.cpu.wf
        addr = read_register(wf, mem.bank, mem.index) + mem.offset
        self._write(instr.operands[1], self.memory.get(addr, 0))
        self.counters.compute_cycles += 2
        thread.pc += 1
        return False

    def _op_st(self, thread: HWThread, instr) -> bool:
        mem = instr.operands[1]
        wf = self.cpu.wf
        addr = read_register(wf, mem.bank, mem.index) + mem.offset
        self.memory[addr] = self._value(instr.operands[0])
        self.counters.compute_cycles += 3
        thread.pc += 1
        return False

    def _op_save(self, thread: HWThread, instr) -> bool:
        ops = instr.operands
        value = None
        if ops:
            value = self._value(ops[0]) + self._value(ops[1])
        self.cpu.save(thread.windows)
        if ops:
            self._write(ops[2], value)
        thread.pc += 1
        return False

    def _op_restore(self, thread: HWThread, instr) -> bool:
        self._do_restore(thread, instr.operands)
        thread.pc += 1
        return False

    def _op_call(self, thread: HWThread, instr) -> bool:
        self.cpu.wf.write_out(7, thread.pc)
        self.counters.compute_cycles += 1
        thread.pc = instr.label
        return False

    def _op_retl(self, thread: HWThread, instr) -> bool:
        thread.pc = self.cpu.wf.read_out(7) + 1
        self.counters.compute_cycles += 1
        return False

    def _op_ret(self, thread: HWThread, instr) -> bool:
        target = self.cpu.wf.read_in(7) + 1
        self._do_restore(thread, ())
        thread.pc = target
        return False

    def _op_retadd(self, thread: HWThread, instr) -> bool:
        target = self.cpu.wf.read_in(7) + 1
        self._do_restore(thread, instr.operands)
        thread.pc = target
        return False

    def _op_nop(self, thread: HWThread, instr) -> bool:
        self.counters.compute_cycles += 1
        thread.pc += 1
        return False

    def _op_halt(self, thread: HWThread, instr) -> int:
        thread.exit_value = self.cpu.wf.read_out(0)
        thread.done = True
        self.scheme.retire(thread.windows)
        self.current = None
        return EXIT_DONE

    def _op_yield(self, thread: HWThread, instr):
        self.counters.compute_cycles += 1
        thread.pc += 1
        if self.ready:
            self.ready.append(thread)
            self._switch_to(self.ready.popleft())
            return EXIT_YIELDED
        return False

    def _do_restore(self, thread: HWThread, operands) -> None:
        """A ``restore``, optionally with the add function of §4.3.

        The operands are read in the callee's window and the result is
        written in the caller's — across a possibly in-place underflow
        trap, which is exactly the case the paper's trap handler must
        emulate.
        """
        value = None
        if operands:
            value = (self._value(operands[0]) + self._value(operands[1]))
        self.cpu.restore(thread.windows)
        if operands:
            self._write(operands[2], value)

    # -- operand helpers ------------------------------------------------------

    def _value(self, operand: Operand) -> int:
        if operand.kind == Operand.IMM:
            return operand.value
        return read_register(self.cpu.wf, operand.bank, operand.index)

    def _write(self, operand: Operand, value: int) -> None:
        write_register(self.cpu.wf, operand.bank, operand.index, value)


def _alu(op: str, a: int, b: int) -> int:
    """Kept for direct use in tests; the interpreter's dispatch table
    binds the same functions from ``_ALU_FUNCS``."""
    fn = _ALU_FUNCS.get(op)
    if fn is None:
        raise MachineFault("bad ALU op %r" % op)
    return fn(a, b)


def _branch_taken(op: str, cc: int) -> bool:
    return _BRANCH_TESTS[op](cc)
