"""The micro-SPARC interpreter.

Each hardware thread has its own program counter, condition codes,
(shadowed) global registers and window state; all threads share the
physical window file, the memory, and the bound window-management
scheme.  ``save``/``restore`` execute through
:class:`repro.windows.cpu.WindowCPU`, so window traps — including the
in-place underflow restore and the emulated restore-as-add of §4.3 —
happen exactly as in the multithreading runtime, but now with live
register data produced by real instructions.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.core import make_scheme
from repro.isa.assembler import Program
from repro.isa.instructions import ALU_OPS, Operand
from repro.isa.registers import read_register, write_register
from repro.metrics.counters import Counters
from repro.windows.cpu import WindowCPU
from repro.windows.thread_windows import ThreadWindows

WORD = 4


class MachineFault(Exception):
    """Illegal execution (bad opcode state, budget exhaustion, ...)."""


class HWThread:
    """One hardware thread context."""

    def __init__(self, tid: int, name: str, entry: int, args):
        self.tid = tid
        self.name = name
        self.pc = entry
        self.args = tuple(args)
        self.cc = 0  # last cmp result (signed difference)
        self.windows = ThreadWindows(tid)
        self.shadow_globals: List[int] = [0] * 8
        self.done = False
        self.exit_value: Optional[int] = None
        self.instructions = 0

    def __repr__(self) -> str:
        return "HWThread(%d, %r, pc=%d, done=%s)" % (
            self.tid, self.name, self.pc, self.done)


class Machine:
    """Interpreter for an assembled :class:`Program`."""

    def __init__(self, program: Program, n_windows: int = 8,
                 scheme: str = "SP", counters: Optional[Counters] = None):
        self.program = program
        self.counters = counters if counters is not None else Counters()
        self.cpu = WindowCPU(n_windows, counters=self.counters)
        if scheme.upper() == "NS":
            self.scheme = make_scheme("NS", self.cpu)
        else:
            self.scheme = make_scheme(scheme, self.cpu)
        self.memory: Dict[int, int] = {}
        self.threads: List[HWThread] = []
        self.ready: deque = deque()
        self.current: Optional[HWThread] = None

    # -- setup -------------------------------------------------------------

    def add_thread(self, entry: str = "start", args=(),
                   name: str = "") -> HWThread:
        thread = HWThread(len(self.threads), name or "hw%d"
                          % len(self.threads), self.program.entry(entry),
                          args)
        self.threads.append(thread)
        self.scheme.register(thread.windows)
        self.ready.append(thread)
        return thread

    # -- memory helpers ------------------------------------------------------

    def poke(self, addr: int, value: int) -> None:
        self.memory[addr] = value

    def peek(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    # -- execution -------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> Dict[str, Optional[int]]:
        steps = 0
        while self.ready or self.current is not None:
            if self.current is None:
                self._switch_to(self.ready.popleft())
            steps += self._run_thread(max_steps - steps)
            if steps >= max_steps:
                raise MachineFault("step budget of %d exhausted" % max_steps)
        return {t.name: t.exit_value for t in self.threads}

    def _switch_to(self, thread: HWThread) -> None:
        out = self.current
        if out is not None:
            out.shadow_globals = list(self.cpu.wf.global_regs)
        self.scheme.context_switch(
            out.windows if out is not None else None, thread.windows)
        first_run = thread.instructions == 0
        self.cpu.wf.global_regs[:] = thread.shadow_globals
        if first_run:
            for i, arg in enumerate(thread.args[:6]):
                self.cpu.wf.write_in(i, arg)
        self.current = thread

    def _run_thread(self, budget: int) -> int:
        """Run the current thread until it yields or halts."""
        thread = self.current
        assert thread is not None
        wf = self.cpu.wf
        instrs = self.program.instructions
        executed = 0
        while executed < budget:
            if not 0 <= thread.pc < len(instrs):
                raise MachineFault(
                    "%s: pc %d out of range" % (thread.name, thread.pc))
            instr = instrs[thread.pc]
            op = instr.op
            executed += 1
            thread.instructions += 1
            if op in ALU_OPS:
                a = self._value(instr.operands[0])
                b = self._value(instr.operands[1])
                self._write(instr.operands[2], _alu(op, a, b))
                self.cpu.tick(1)
                thread.pc += 1
            elif op == "mov":
                self._write(instr.operands[1],
                            self._value(instr.operands[0]))
                self.cpu.tick(1)
                thread.pc += 1
            elif op == "cmp":
                thread.cc = (self._value(instr.operands[0])
                             - self._value(instr.operands[1]))
                self.cpu.tick(1)
                thread.pc += 1
            elif op == "ba":
                thread.pc = instr.label
                self.cpu.tick(1)
            elif op in ("be", "bne", "bg", "bge", "bl", "ble"):
                taken = _branch_taken(op, thread.cc)
                thread.pc = instr.label if taken else thread.pc + 1
                self.cpu.tick(1)
            elif op == "ld":
                mem = instr.operands[0]
                addr = read_register(wf, mem.bank, mem.index) + mem.offset
                self._write(instr.operands[1], self.memory.get(addr, 0))
                self.cpu.tick(2)
                thread.pc += 1
            elif op == "st":
                mem = instr.operands[1]
                addr = read_register(wf, mem.bank, mem.index) + mem.offset
                self.memory[addr] = self._value(instr.operands[0])
                self.cpu.tick(3)
                thread.pc += 1
            elif op == "save":
                value = None
                if instr.operands:
                    value = (self._value(instr.operands[0])
                             + self._value(instr.operands[1]))
                self.cpu.save(thread.windows)
                if instr.operands:
                    self._write(instr.operands[2], value)
                thread.pc += 1
            elif op == "restore":
                self._do_restore(thread, instr.operands)
                thread.pc += 1
            elif op == "call":
                wf.write_out(7, thread.pc)
                self.cpu.tick(1)
                thread.pc = instr.label
            elif op == "retl":
                thread.pc = wf.read_out(7) + 1
                self.cpu.tick(1)
            elif op == "ret":
                target = wf.read_in(7) + 1
                self._do_restore(thread, ())
                thread.pc = target
            elif op == "retadd":
                target = wf.read_in(7) + 1
                self._do_restore(thread, instr.operands)
                thread.pc = target
            elif op == "nop":
                self.cpu.tick(1)
                thread.pc += 1
            elif op == "halt":
                thread.exit_value = wf.read_out(0)
                thread.done = True
                self.scheme.retire(thread.windows)
                self.current = None
                return executed
            elif op == "yield":
                self.cpu.tick(1)
                thread.pc += 1
                if self.ready:
                    self.ready.append(thread)
                    self._switch_to(self.ready.popleft())
                    return executed
            else:  # pragma: no cover - assembler rejects unknown ops
                raise MachineFault("unknown op %r" % op)
        return executed

    def _do_restore(self, thread: HWThread, operands) -> None:
        """A ``restore``, optionally with the add function of §4.3.

        The operands are read in the callee's window and the result is
        written in the caller's — across a possibly in-place underflow
        trap, which is exactly the case the paper's trap handler must
        emulate.
        """
        value = None
        if operands:
            value = (self._value(operands[0]) + self._value(operands[1]))
        self.cpu.restore(thread.windows)
        if operands:
            self._write(operands[2], value)

    # -- operand helpers ------------------------------------------------------

    def _value(self, operand: Operand) -> int:
        if operand.kind == Operand.IMM:
            return operand.value
        return read_register(self.cpu.wf, operand.bank, operand.index)

    def _write(self, operand: Operand, value: int) -> None:
        write_register(self.cpu.wf, operand.bank, operand.index, value)


def _alu(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return a << b
    if op == "srl":
        return a >> b
    if op == "smul":
        return a * b
    raise MachineFault("bad ALU op %r" % op)


def _branch_taken(op: str, cc: int) -> bool:
    if op == "be":
        return cc == 0
    if op == "bne":
        return cc != 0
    if op == "bg":
        return cc > 0
    if op == "bge":
        return cc >= 0
    if op == "bl":
        return cc < 0
    return cc <= 0  # ble
