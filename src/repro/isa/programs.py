"""Sample micro-SPARC programs used by tests, examples and benches."""

#: recursive factorial; the classic save/restore window workout.
#: Result convention: argument in %o0 before call, result in %o0 after.
FACTORIAL = """
start:
    mov   6, %o0
    call  factorial
    nop
    halt                    ; %o0 = 720

factorial:
    save                    ; fresh window, argument now in %i0
    cmp   %i0, 2
    bl    base
    add   %i0, -1, %o0
    call  factorial
    nop
    smul  %o0, %i0, %i0     ; n * factorial(n-1) into the return reg
    ret                     ; fused ret + restore
base:
    mov   1, %i0
    ret
"""

#: factorial whose epilogue uses the restore-as-add peephole (§4.3):
#: the result is computed *by the restore instruction itself*, so an
#: underflow trap must emulate the add — the exact case the paper's
#: handler interprets.
FACTORIAL_RETADD = """
start:
    mov   7, %o0
    call  factorial
    nop
    halt                    ; %o0 = 5040

factorial:
    save
    cmp   %i0, 2
    bl    base
    add   %i0, -1, %o0
    call  factorial
    nop
    smul  %o0, %i0, %l1
    retadd %l1, %g0, %o0    ; caller's %o0 = %l1 + 0, via restore
base:
    retadd %g0, 1, %o0      ; caller's %o0 = 1
"""

#: naive double recursion: lots of window traffic at small files
FIBONACCI = """
start:
    mov   10, %o0
    call  fib
    nop
    halt                    ; %o0 = 55

fib:
    save
    cmp   %i0, 2
    bl    fib_base
    add   %i0, -1, %o0
    call  fib
    nop
    mov   %o0, %l1          ; fib(n-1)
    add   %i0, -2, %o0
    call  fib
    nop
    add   %o0, %l1, %i0     ; fib(n-2) + fib(n-1)
    ret
fib_base:
    mov   %i0, %i0
    ret
"""

#: mutual recursion: is_even/is_odd by decrementing to zero
MUTUAL = """
start:
    mov   9, %o0
    call  is_even
    nop
    halt                    ; %o0 = 0 (9 is odd)

is_even:
    save
    cmp   %i0, 0
    be    even_yes
    add   %i0, -1, %o0
    call  is_odd
    nop
    mov   %o0, %i0
    ret
even_yes:
    mov   1, %i0
    ret

is_odd:
    save
    cmp   %i0, 0
    be    odd_no
    add   %i0, -1, %o0
    call  is_even
    nop
    mov   %o0, %i0
    ret
odd_no:
    mov   0, %i0
    ret
"""

#: two threads incrementing their own memory counters, yielding every
#: iteration; each also makes a nested call per step so both threads
#: keep live windows across switches.
TWO_COUNTERS = """
start:
    mov   0, %l0            ; counter value
    mov   0, %l1            ; loop index
loop:
    cmp   %l1, 8
    bge   finish
    mov   %l0, %o0
    call  bump
    nop
    mov   %o0, %l0
    st    %l0, [%i1]        ; args: %i0 unused, %i1 = result address
    add   %l1, 1, %l1
    yield
    ba    loop
finish:
    mov   %l0, %o0
    halt

bump:
    save
    add   %i0, 1, %i0
    ret
"""

#: Takeuchi's function: heavy triple recursion, brutal on small files
TAK = """
start:
    mov   10, %o0
    mov   5, %o1
    mov   3, %o2
    call  tak
    nop
    halt                    ; tak(10,5,3) = 4

tak:
    save
    cmp   %i1, %i0          ; if y >= x: return z
    bl    tak_recurse
    mov   %i2, %i0
    ret
tak_recurse:
    add   %i0, -1, %o0      ; tak(x-1, y, z)
    mov   %i1, %o1
    mov   %i2, %o2
    call  tak
    nop
    mov   %o0, %l0
    add   %i1, -1, %o0      ; tak(y-1, z, x)
    mov   %i2, %o1
    mov   %i0, %o2
    call  tak
    nop
    mov   %o0, %l1
    add   %i2, -1, %o0      ; tak(z-1, x, y)
    mov   %i0, %o1
    mov   %i1, %o2
    call  tak
    nop
    mov   %o0, %l2
    mov   %l0, %o0          ; tak(tak(...), tak(...), tak(...))
    mov   %l1, %o1
    mov   %l2, %o2
    call  tak
    nop
    mov   %o0, %i0
    ret
"""

#: Ackermann (tiny arguments!) — the deepest stacks we dare simulate
ACKERMANN = """
start:
    mov   2, %o0
    mov   3, %o1
    call  ack
    nop
    halt                    ; ack(2,3) = 9

ack:
    save
    cmp   %i0, 0
    be    ack_base          ; ack(0,n) = n+1
    cmp   %i1, 0
    be    ack_m             ; ack(m,0) = ack(m-1,1)
    mov   %i0, %o0          ; ack(m, n-1)
    add   %i1, -1, %o1
    call  ack
    nop
    mov   %o0, %o1          ; second argument = ack(m, n-1)
    add   %i0, -1, %o0      ; first argument = m-1
    call  ack
    nop
    mov   %o0, %i0
    ret
ack_base:
    add   %i1, 1, %i0
    ret
ack_m:
    add   %i0, -1, %o0
    mov   1, %o1
    call  ack
    nop
    mov   %o0, %i0
    ret
"""

#: deep single recursion parameterised via memory cell 0
DEEP_SUM = """
start:
    ld    [%g0 + 0], %o0    ; n from memory address 0
    call  sum
    nop
    halt                    ; %o0 = n + (n-1) + ... + 1

sum:
    save
    cmp   %i0, 1
    ble   sum_base
    add   %i0, -1, %o0
    call  sum
    nop
    add   %o0, %i0, %i0
    ret
sum_base:
    mov   %i0, %i0
    ret
"""
