"""Synthetic workloads with controllable window behaviour.

These isolate single effects for the ablation benchmarks and tests:

* :func:`spawn_call_depth_workers` — threads oscillating between call
  depths, with exact control over window activity per thread (§5);
* :func:`spawn_ping_pong` — two threads alternating on byte streams:
  the §4.2 pathology case for the SNP simple allocation policy;
* :func:`spawn_fork_join` — a parent feeding work to children and
  collecting results, long sleeps included (for the §4.4 flush-type
  switch ablation);
* :func:`spawn_yield_storm` — threads spinning through ``YieldCPU``
  without moving data: the livelock pattern the kernel watchdog
  exists to detect.
"""

from __future__ import annotations

from typing import List

from repro.runtime.kernel import Kernel
from repro.runtime.ops import (
    Call,
    CloseStream,
    FlushHint,
    Read,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.thread import SimThread


def _nest(depth: int, work: int):
    """Descend ``depth`` calls, tick, and unwind."""
    yield Tick(1)
    if depth <= 0:
        yield Tick(work)
        return 1
    result = yield Call(_nest, depth - 1, work)
    return result + 1


def _depth_worker(stream, iterations: int, depth: int, work: int):
    """One quantum of work per token read: descend/ascend ``depth``."""
    completed = 0
    for __ in range(iterations):
        token = yield Read(stream, 1)
        if not token:
            break
        levels = yield Call(_nest, depth, work)
        completed += levels
    return completed


def _token_source(stream, count: int):
    for __ in range(count):
        yield Write(stream, b"x")
    yield CloseStream(stream)
    return count


def spawn_call_depth_workers(kernel: Kernel, n_workers: int,
                             iterations: int, depth: int,
                             work: int = 5) -> List[SimThread]:
    """Workers with window activity per thread of exactly ``depth+1``.

    A one-byte token stream per worker forces a context switch per
    iteration, so total window activity = n_workers * (depth + 1).
    """
    threads = []
    for i in range(n_workers):
        stream = kernel.stream(1, "tok%d" % i)
        threads.append(kernel.spawn(
            _token_source, stream, iterations, name="src%d" % i))
        threads.append(kernel.spawn(
            _depth_worker, stream, iterations, depth, work,
            name="worker%d" % i))
    return threads


def _pinger(out_stream, in_stream, rounds: int):
    """Blocks immediately after every send: suspends with no calls in
    flight — the pattern that makes SNP's simple allocation thrash
    (§4.2: B suspends without any procedure calls, A is rescheduled,
    B's window is spilt to make room for A's reserved window...)."""
    for __ in range(rounds):
        yield Write(out_stream, b"p")
        data = yield Read(in_stream, 1)
        if not data:
            break
    yield CloseStream(out_stream)
    return rounds


def _ponger(in_stream, out_stream):
    count = 0
    while True:
        data = yield Read(in_stream, 1)
        if not data:
            yield CloseStream(out_stream)
            return count
        count += 1
        yield Write(out_stream, b"q")


def spawn_ping_pong(kernel: Kernel, rounds: int) -> List[SimThread]:
    """Two threads strictly alternating through one-byte streams."""
    ping = kernel.stream(1, "ping")
    pong = kernel.stream(1, "pong")
    return [
        kernel.spawn(_pinger, ping, pong, rounds, name="pinger"),
        kernel.spawn(_ponger, ping, pong, name="ponger"),
    ]


def _fork_parent(work_streams, result_stream, items: int,
                 flush_hint: bool):
    sent = 0
    for i in range(items):
        stream = work_streams[i % len(work_streams)]
        yield Write(stream, bytes([i % 251]))
        sent += 1
    for stream in work_streams:
        yield CloseStream(stream)
    total = 0
    received = 0
    if flush_hint:
        # The parent now only waits for results: it will sleep long,
        # so ask for the flush-type context switch (§4.4).
        yield FlushHint(True)
    while received < items:
        data = yield Read(result_stream, 64)
        if not data:
            break
        for byte in data:
            total += byte
            received += 1
    return total


def _fork_child(work_stream, result_stream):
    processed = 0
    while True:
        data = yield Read(work_stream, 4)
        if not data:
            return processed
        for byte in data:
            doubled = yield Call(_double, byte)
            yield Write(result_stream, bytes([doubled % 251]))
            processed += 1


def _double(value: int):
    yield Tick(3)
    return (value * 2) % 251


def spawn_fork_join(kernel: Kernel, n_children: int, items: int,
                    flush_hint: bool = False) -> List[SimThread]:
    """A parent fans work out to children and sums their results.

    The results stream is sized to hold every result: the parent
    distributes all work before collecting, so a smaller buffer would
    deadlock (children blocked writing results, parent blocked writing
    work).
    """
    result_stream = kernel.stream(max(items, 1), "results")
    work_streams = [kernel.stream(2, "work%d" % i)
                    for i in range(n_children)]
    threads = [kernel.spawn(_fork_parent, work_streams, result_stream,
                            items, flush_hint, name="parent")]
    for i, stream in enumerate(work_streams):
        threads.append(kernel.spawn(_fork_child, stream, result_stream,
                                    name="child%d" % i))
    return threads


def expected_fork_join_total(items: int) -> int:
    return sum((i % 251) * 2 % 251 for i in range(items))


def _spinner(spins: int):
    """One initial tick of real progress, then a pure yield storm."""
    yield Tick(1)
    for __ in range(spins):
        yield YieldCPU()
    return spins


def spawn_yield_storm(kernel: Kernel, n_spinners: int,
                      spins: int) -> List[SimThread]:
    """Threads that bounce through the ready queue moving no data.

    After the initial ticks the progress clock stops while the step
    clock keeps running, so a kernel watchdog with
    ``max_stall < n_spinners * spins`` deterministically raises
    :class:`~repro.runtime.errors.LivelockError`; without a watchdog
    (or with a generous one) the storm drains and the run completes.
    """
    return [kernel.spawn(_spinner, spins, name="spin%d" % i)
            for i in range(n_spinners)]
