"""The paper's evaluation application: a multi-threaded spell checker
for LaTeX source files (§5.1, Figure 10).

Seven threads connected by six bounded streams::

    T4 (input) --S1(M)--> T1 (delatex) --S2(N)--> T2 (spell1)
        --S3(N)--> T3 (spell2) --S4(M)--> T5 (output)
    T6 (dict1) --S5(M)--> T2        T7 (dict2) --S6(M)--> T3

* Granularity is set by the absolute sizes of M and N;
* concurrency by their relative sizes: M == N (small) is the
  high-concurrency case, M >> N the low-concurrency case.
"""

from repro.apps.spellcheck.corpus import (
    CORPUS_SIZE,
    DICT_SIZE,
    generate_corpus,
    generate_dictionaries,
    generate_vocabulary,
)
from repro.apps.spellcheck.pipeline import (
    BUFFER_CONFIGS,
    SpellConfig,
    build_spellchecker,
    run_spellchecker,
)

__all__ = [
    "CORPUS_SIZE",
    "DICT_SIZE",
    "generate_corpus",
    "generate_dictionaries",
    "generate_vocabulary",
    "BUFFER_CONFIGS",
    "SpellConfig",
    "build_spellchecker",
    "run_spellchecker",
]
