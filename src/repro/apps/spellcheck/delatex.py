"""T1 — the ``delatex`` filter: strip LaTeX, emit one word per line.

The paper's T1 was generated with ``lex``; ours is a hand-written
streaming state machine with the same contract: LaTeX commands, math,
comments and punctuation are removed, and every surviving word comes
out lowercased on its own line (§5.1).
"""

from __future__ import annotations

from repro.runtime.ops import Call, CloseStream, Read, Tick, Write

TEXT = 0
COMMAND = 1
COMMENT = 2
MATH = 3


class LexState:
    """Carries the scanner state across stream chunks."""

    __slots__ = ("mode", "token")

    def __init__(self):
        self.mode = TEXT
        self.token = []


def delatex_thread(s_in, s_out, read_chunk: int = 64):
    """Root procedure of T1.

    Input is re-buffered into fixed ``read_chunk``-byte units before
    each ``process_block`` call, so the dynamic count of procedure
    calls (and therefore ``save`` instructions) depends only on the
    input, never on the stream buffer sizes — the property Table 1
    rests on ("the dynamic count of save instructions is independent
    of the buffer size and scheduling strategy").
    """
    state = LexState()
    words = 0
    buf = b""
    eof = False
    while not eof:
        data = yield Read(s_in, read_chunk)
        if not data:
            eof = True
        else:
            buf += data
        while len(buf) >= read_chunk or (eof and buf):
            piece, buf = buf[:read_chunk], buf[read_chunk:]
            words += yield Call(process_block, s_out, piece, state)
    if state.mode == TEXT and len(state.token) >= 2:
        words += yield Call(emit_word, s_out, "".join(state.token))
    yield CloseStream(s_out)
    return words


def process_block(s_out, data, state):
    """Scan one chunk; emits completed words as it goes."""
    yield Tick(12 * len(data))
    count = 0
    mode = state.mode
    token = state.token
    for byte in data:
        ch = chr(byte)
        if mode == COMMENT:
            if ch == "\n":
                mode = TEXT
            continue
        if mode == MATH:
            if ch == "$":
                mode = TEXT
            continue
        if mode == COMMAND:
            if ch.isalpha():
                continue
            mode = TEXT
            # fall through: this character still needs normal handling
        if ch == "%":
            if token:
                count += yield from _finish(s_out, token)
            mode = COMMENT
        elif ch == "$":
            if token:
                count += yield from _finish(s_out, token)
            mode = MATH
        elif ch == "\\":
            if token:
                count += yield from _finish(s_out, token)
            mode = COMMAND
        elif ch.isalpha():
            token.append(ch.lower())
        else:
            if token:
                count += yield from _finish(s_out, token)
    state.mode = mode
    state.token = token
    return count


def _finish(s_out, token):
    """Close the current token; words shorter than 2 letters are noise."""
    word = "".join(token)
    del token[:]
    if len(word) < 2:
        return 0
    emitted = yield Call(emit_word, s_out, word)
    return emitted


def emit_word(s_out, word: str):
    """Leaf procedure: one word, one line."""
    yield Tick(30)
    yield Write(s_out, word.encode("ascii") + b"\n")
    return 1
