"""Deterministic corpus and dictionary generation.

The paper's input was a 40 500-byte LaTeX draft of the paper itself,
checked against the UNIX spell dictionaries (the two dictionary
streams T6 and T7 carry about 50 000 bytes each, judging from their
context-switch counts in Table 1).  We generate a synthetic equivalent:

* a seeded vocabulary of base words (a core of real English words plus
  deterministically synthesised word-shaped strings),
* ``dict2`` — the base-word dictionary used by T3 (spell2),
* ``dict1`` — the valid *derivative forms* used by T2 (spell1) to
  catch incorrect derivatives (words that naive suffix stripping would
  wrongly accept),
* a LaTeX document of exactly ``CORPUS_SIZE * scale`` bytes with a
  Zipf-ish word distribution, LaTeX commands, math, comments, and a
  seeded sprinkle of misspellings and unknown words.

Everything is a pure function of the seed, so every experiment is
exactly reproducible.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

#: the paper's draft was 40500 bytes long (§5.1)
CORPUS_SIZE = 40500
#: inferred from T6/T7 behaviour in Table 1 (50001 fine-grain switches)
DICT_SIZE = 50000

DEFAULT_SEED = 1993

#: suffixes handled by the derivative logic (mirrors UNIX spell's list)
SUFFIXES = ("ing", "ed", "es", "er", "est", "ly", "s")

#: base words per full-size dictionary (~50 kB at ~9.6 bytes per line)
BASES_PER_FULL_DICT = 5200

_CORE_WORDS = """
article document class begin end
the of and to in is that it for on with as are this be by from at or an
window register thread context switch scheme overflow underflow trap
processor architecture memory stack cache pipeline instruction cycle
save restore call return procedure function program system machine
performance evaluation result figure table section paper algorithm
hardware software parallel concurrent granularity concurrency level
buffer stream input output dictionary spell check word line file
number count time fast slow cost overhead support dynamic static
allocation management multiple single share reserved private global
local current pointer mask valid invalid active suspend schedule
queue ready block wake run exec work set concept virtual physical
page frame task monitor kernel user code data value state change
point order case best worst small large high low fine coarse deep
shallow top bottom above below first last next new old good bad
design implement measure compare propose describe discuss show
present require provide reduce increase improve enable avoid cause
effect behavior pattern model term define note example section
"""


def _syllable_word(rng: random.Random) -> str:
    """A pronounceable synthetic base word (no real-word collisions
    matter: the same vocabulary feeds both corpus and dictionaries)."""
    onsets = ["b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n",
              "p", "r", "s", "t", "v", "w", "z", "br", "cl", "dr",
              "fl", "gr", "pl", "pr", "sk", "sl", "sp", "st", "tr"]
    vowels = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
    codas = ["", "b", "d", "g", "k", "l", "m", "n", "p", "r", "t",
             "ck", "ld", "nd", "nt", "rm", "st"]
    n_syll = rng.choice((2, 2, 2, 3, 3))
    parts = []
    for _ in range(n_syll):
        parts.append(rng.choice(onsets))
        parts.append(rng.choice(vowels))
    parts.append(rng.choice(codas))
    return "".join(parts)


def derive(base: str, suffix: str) -> str:
    """The *correct* derivative form (simplified English spelling
    rules: drop a silent e, y->ies, s/es choice)."""
    if suffix in ("ing", "ed", "er", "est") and base.endswith("e"):
        return base[:-1] + suffix
    if suffix in ("s", "es"):
        if base.endswith(("s", "x", "z", "ch", "sh")):
            return base + "es"
        if base.endswith("y") and len(base) > 2 and base[-2] not in "aeiou":
            return base[:-1] + "ies"
        return base + "s"
    if suffix == "ly" and base.endswith("y"):
        return base[:-1] + "ily"
    return base + suffix


def naive_strip(word: str) -> List[str]:
    """Candidate stems by naive suffix stripping (what T3 would do and
    what T2 must double-check, §5.1)."""
    stems = []
    for suffix in SUFFIXES:
        if word.endswith(suffix) and len(word) > len(suffix) + 2:
            stems.append(word[: -len(suffix)])
    return stems


def misspell(word: str, rng: random.Random) -> str:
    """Introduce one deterministic-per-rng typo."""
    if len(word) < 4:
        return word + word[-1]
    kind = rng.randrange(4)
    i = rng.randrange(1, len(word) - 1)
    if kind == 0:  # drop a letter
        return word[:i] + word[i + 1:]
    if kind == 1:  # double a letter
        return word[:i] + word[i] + word[i:]
    if kind == 2:  # swap neighbours
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]
    return word[:i] + "q" + word[i + 1:]  # substitute


def generate_vocabulary(seed: int = DEFAULT_SEED,
                        n_bases: int = 5200) -> List[str]:
    """Base vocabulary: core English words plus synthetic fillers."""
    rng = random.Random(seed)
    words = []
    seen = set()
    for w in _CORE_WORDS.split():
        if w not in seen:
            seen.add(w)
            words.append(w)
    while len(words) < n_bases:
        w = _syllable_word(rng)
        if w not in seen:
            seen.add(w)
            words.append(w)
    return words


def bases_for_scale(scale: float) -> int:
    """Vocabulary size consistent between corpus and dictionaries, so
    that dictionary coverage of the document stays realistic at every
    scale factor."""
    return max(60, int(BASES_PER_FULL_DICT * scale))


def generate_dictionaries(seed: int = DEFAULT_SEED,
                          size: int = DICT_SIZE
                          ) -> Tuple[bytes, bytes, List[str]]:
    """Build (dict1, dict2, vocabulary).

    dict2 is the base-word list (for T3); dict1 is the valid-derivative
    list (for T2).  Both are newline-separated and padded/truncated to
    ``size`` bytes by adjusting the number of entries.

    Generation is pure in (seed, size), so results are memoized —
    benchmark repeats and sweep grids rebuild the same dictionaries
    many times.  The byte streams are immutable and shared; the
    vocabulary list is copied per call.
    """
    dict1, dict2, vocab = _dictionaries_cached(seed, size)
    return dict1, dict2, list(vocab)


@lru_cache(maxsize=64)
def _dictionaries_cached(seed: int,
                         size: int) -> Tuple[bytes, bytes, tuple]:
    vocab = generate_vocabulary(seed, bases_for_scale(size / DICT_SIZE))
    rng = random.Random(seed + 1)

    def pack(words: Sequence[str]) -> bytes:
        out = bytearray()
        for w in words:
            encoded = w.encode("ascii") + b"\n"
            if len(out) + len(encoded) > size:
                break
            out.extend(encoded)
        # pad with comment-ish filler entries to the exact size
        while len(out) < size:
            filler = ("#" + format(len(out), "06d")).encode("ascii") + b"\n"
            out.extend(filler[: size - len(out)])
        return bytes(out)

    dict2 = pack(vocab)

    # dict1: the *derivable* bases T2 uses to validate derivative
    # spelling by rule (a large sample of the vocabulary).
    derivable = [base for base in vocab if rng.random() < 0.85]
    dict1 = pack(derivable)
    return dict1, dict2, tuple(vocab)


def parse_dictionary(data: bytes) -> frozenset:
    """Word set from a dictionary byte stream (filler lines skipped)."""
    return frozenset(
        line.decode("ascii")
        for line in data.split(b"\n")
        if line and not line.startswith(b"#"))


def generate_corpus(seed: int = DEFAULT_SEED, scale: float = 1.0,
                    misspelling_rate: float = 0.004,
                    unknown_rate: float = 0.002,
                    naive_derivative_rate: float = 0.05) -> bytes:
    """A LaTeX document of exactly ``round(CORPUS_SIZE * scale)`` bytes.

    Word frequencies are Zipf-ish over the vocabulary; a seeded
    fraction of words are misspelled or replaced with unknown words so
    the spell checker produces output of a realistic size (the paper's
    T5 handled about 1000 bytes).

    Generation is pure in its arguments and the result is immutable
    bytes, so documents are memoized — benchmark repeats and sweep
    grids rebuild the same corpus many times.
    """
    return _corpus_cached(seed, scale, misspelling_rate, unknown_rate,
                          naive_derivative_rate)


@lru_cache(maxsize=64)
def _corpus_cached(seed: int, scale: float, misspelling_rate: float,
                   unknown_rate: float,
                   naive_derivative_rate: float) -> bytes:
    target = max(200, int(round(CORPUS_SIZE * scale)))
    vocab = generate_vocabulary(seed, bases_for_scale(scale))
    rng = random.Random(seed + 2)

    # Zipf-ish sampling: rank r gets weight 1/(r+3).
    weights = [1.0 / (r + 3) for r in range(len(vocab))]
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def pick_word() -> str:
        x = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return vocab[lo]

    latex_commands = ["\\section{%s}", "\\cite{%s}", "\\ref{%s}",
                      "\\emph{%s}", "\\label{%s}", "\\textbf{%s}"]

    out = bytearray()
    out.extend(b"\\documentclass{article}\n\\begin{document}\n")
    line = []
    line_len = 0
    words_on_line = 0
    while len(out) < target:
        roll = rng.random()
        if roll < 0.015:
            token = rng.choice(latex_commands) % pick_word()
        elif roll < 0.025:
            token = "$%s_{%d}$" % (pick_word()[:3], rng.randrange(9))
        elif roll < 0.030:
            token = "% " + pick_word()
        else:
            word = pick_word()
            style = rng.random()
            if style < misspelling_rate:
                word = misspell(word, rng)
            elif style < misspelling_rate + unknown_rate:
                word = _syllable_word(rng) + "yx"
            elif style < 0.25:
                suffix = rng.choice(SUFFIXES)
                if rng.random() < naive_derivative_rate:
                    word = word + suffix          # naive, often incorrect
                else:
                    word = derive(word, suffix)   # correct derivative
            token = word
        line.append(token)
        line_len += len(token) + 1
        words_on_line += 1
        if line_len > 68 or (token.startswith("%") and words_on_line > 1):
            encoded = (" ".join(line) + "\n").encode("ascii")
            out.extend(encoded)
            line = []
            line_len = 0
            words_on_line = 0
    if line:
        out.extend((" ".join(line) + "\n").encode("ascii"))
    out.extend(b"\\end{document}\n")
    # Trim or pad to the exact target size, ending with a newline.
    if len(out) > target:
        del out[target - 1:]
        out.extend(b"\n")
    while len(out) < target:
        out.extend(b"%\n"[: target - len(out)])
    return bytes(out)


def corpus_statistics(corpus: bytes) -> Dict[str, int]:
    """Quick structural statistics, used by tests."""
    text = corpus.decode("ascii", "replace")
    return {
        "bytes": len(corpus),
        "lines": text.count("\n"),
        "commands": text.count("\\"),
        "math": text.count("$") // 2,
        "comments": text.count("%"),
    }
