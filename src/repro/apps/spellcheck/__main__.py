"""Command-line spell checker: ``python -m repro.apps.spellcheck``.

Checks a LaTeX file (or the built-in synthetic corpus) by running the
full seven-thread pipeline on the window simulator and prints the
misspelling report plus simulation statistics.

    python -m repro.apps.spellcheck paper.tex
    python -m repro.apps.spellcheck --scheme NS --windows 7 --stats
    python -m repro.apps.spellcheck --m 1024 --n 4   # low concurrency
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.spellcheck.corpus import (
    DICT_SIZE,
    generate_corpus,
    generate_dictionaries,
)
from repro.apps.spellcheck.delatex import delatex_thread
from repro.apps.spellcheck.io_threads import (
    file_sink_thread,
    file_source_thread,
)
from repro.apps.spellcheck.spell import spell1_thread, spell2_thread
from repro.runtime.kernel import Kernel


def check_document(document: bytes, dict1: bytes, dict2: bytes,
                   m: int, n: int, scheme: str, n_windows: int,
                   instrument=None, faults=None, audit: bool = False,
                   watchdog=None, crash_dir=None, crash_config=None,
                   core=None, backend=None):
    """Run the pipeline over arbitrary document bytes.

    ``instrument`` (optional) receives the kernel before spawning, so
    observability consumers can subscribe to ``kernel.events``.
    ``faults``/``audit``/``watchdog``/``crash_dir`` are the robustness
    knobs (see :mod:`repro.faults`); register verification is forced on
    under injection so a corrupting fault is detected, not absorbed.
    """
    if crash_dir is not None and crash_config is None:
        crash_config = {"workload": "spellcheck", "scheme": scheme,
                        "n_windows": n_windows, "m": m, "n": n,
                        "verify_registers": faults is not None,
                        "audit": audit, "watchdog": watchdog or 0}
    kernel = Kernel(n_windows=n_windows, scheme=scheme,
                    verify_registers=faults is not None,
                    faults=faults, audit=audit, watchdog=watchdog,
                    crash_dir=crash_dir, crash_config=crash_config,
                    core=core, backend=backend)
    if instrument is not None:
        instrument(kernel)
    s1 = kernel.stream(m, "S1")
    s2 = kernel.stream(n, "S2")
    s3 = kernel.stream(n, "S3")
    s4 = kernel.stream(m, "S4")
    s5 = kernel.stream(m, "S5")
    s6 = kernel.stream(m, "S6")
    kernel.spawn(delatex_thread, s1, s2, name="T1.delatex")
    kernel.spawn(spell1_thread, s5, s2, s3, name="T2.spell1")
    kernel.spawn(spell2_thread, s6, s3, s4, name="T3.spell2")
    kernel.spawn(file_source_thread, s1, document, name="T4.input")
    kernel.spawn(file_sink_thread, s4, name="T5.output")
    kernel.spawn(file_source_thread, s5, dict1, name="T6.dict1")
    kernel.spawn(file_source_thread, s6, dict2, name="T7.dict2")
    result = kernel.run()
    return result, result.result_of("T5.output")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.spellcheck",
        description="Multi-threaded spell checker on the register-"
                    "window simulator (the paper's Figure 10).")
    parser.add_argument("file", nargs="?",
                        help="LaTeX file to check (default: the "
                             "built-in synthetic corpus)")
    parser.add_argument("--scheme", default="SP",
                        choices=["NS", "SNP", "SP"])
    parser.add_argument("--windows", type=int, default=8)
    parser.add_argument("--m", type=int, default=16,
                        help="I/O stream buffer bytes (S1, S4-S6)")
    parser.add_argument("--n", type=int, default=16,
                        help="filter stream buffer bytes (S2, S3)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="synthetic corpus scale when no file given")
    parser.add_argument("--stats", action="store_true",
                        help="print simulation statistics")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON (open in "
                             "chrome://tracing or ui.perfetto.dev)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write a RunReport JSON document")
    parser.add_argument("--seed", type=int, default=1993,
                        help="seed for the fault plan's RNG")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="fault-injection plan, e.g. "
                             "'register@3,store_fail@2' or 'random:4' "
                             "(see repro.faults)")
    parser.add_argument("--audit", action="store_true",
                        help="run the full invariant check after every "
                             "dispatch/call/return")
    parser.add_argument("--watchdog", type=int, metavar="STEPS",
                        default=None,
                        help="raise LivelockError after this many steps "
                             "without progress")
    parser.add_argument("--crash-dir", metavar="DIR", default=None,
                        help="write a replayable crash bundle here on "
                             "any simulator error")
    parser.add_argument("--metrics", action="store_true",
                        help="collect aggregate telemetry (histograms + "
                             "cycle-domain profiler) and print a summary")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the repro.metrics-snapshot JSON here "
                             "(implies --metrics)")
    parser.add_argument("--core", choices=("batched",),
                        default=None,
                        help="execution core (default: $REPRO_CORE or "
                             'the batched run-until-event core; the '
                             'step-granular "generator" core was retired '
                             "and lives on only as the test suite's "
                             "reference loop)")
    parser.add_argument("--backend", choices=("compiled", "pure"),
                        default=None,
                        help="execution backend (default: $REPRO_BACKEND "
                             "or auto-detect: the compiled repro._fast "
                             "fast path when built, else the pure-Python "
                             "loop)")
    args = parser.parse_args(argv)

    if args.file:
        with open(args.file, "rb") as handle:
            document = handle.read()
        dict_size = DICT_SIZE
    else:
        document = generate_corpus(scale=args.scale)
        dict_size = max(200, int(round(DICT_SIZE * args.scale)))
    dict1, dict2, __ = generate_dictionaries(size=dict_size)

    observers = {}
    instrument = None
    if args.trace or args.report:
        from repro.metrics.behavior import BehaviorTracker
        from repro.metrics.perfetto import PerfettoExporter
        from repro.metrics.tracing import OccupancyTimeline

        def instrument(kernel):
            observers["recorder"] = kernel.enable_tracing()
            observers["exporter"] = PerfettoExporter()
            kernel.events.subscribe(observers["exporter"])
            observers["tracker"] = BehaviorTracker()
            kernel.tracker = observers["tracker"]
            observers["timeline"] = OccupancyTimeline()
            kernel.timeline = observers["timeline"]

    telemetry = None
    if args.metrics or args.metrics_out:
        from repro.metrics.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        trace_instrument = instrument

        def instrument(kernel, _inner=trace_instrument):
            if _inner is not None:
                _inner(kernel)
            telemetry.attach(kernel)

    injector = None
    if args.faults:
        from repro.faults import FaultInjector, plan_from_arg

        injector = FaultInjector(plan_from_arg(args.faults,
                                               seed=args.seed))
    crash_config = None
    if args.crash_dir is not None:
        # a file-fed document cannot be regenerated from the bundle, so
        # mark such runs unreplayable instead of replaying the wrong input
        crash_config = {
            "workload": "spellcheck" if not args.file else "spellcheck-file",
            "scheme": args.scheme, "n_windows": args.windows,
            "m": args.m, "n": args.n, "scale": args.scale,
            "verify_registers": injector is not None,
            "audit": args.audit, "watchdog": args.watchdog or 0,
        }
    try:
        result, report = check_document(
            document, dict1, dict2, args.m, args.n, args.scheme,
            args.windows, instrument=instrument, faults=injector,
            audit=args.audit, watchdog=args.watchdog,
            crash_dir=args.crash_dir, crash_config=crash_config,
            core=args.core, backend=args.backend)
    except Exception as exc:
        from repro.errors import ReproError

        if not isinstance(exc, ReproError):
            raise
        print("simulator fault: %s: %s" % (type(exc).__name__, exc),
              file=sys.stderr)
        bundle = getattr(exc, "bundle_path", None)
        if bundle is not None:
            print("crash bundle: %s" % bundle, file=sys.stderr)
            print("replay with: python -m repro.faults replay %s"
                  % bundle, file=sys.stderr)
        if injector is not None:
            print(injector.summary(), file=sys.stderr)
        return 1
    if injector is not None:
        print(injector.summary())
    metrics_snapshot = None
    if telemetry is not None:
        telemetry.finalize(result)
        metrics_snapshot = telemetry.snapshot(
            {"workload": "spellcheck", "scheme": args.scheme,
             "n_windows": args.windows, "m": args.m, "n": args.n})
    if args.trace:
        if telemetry is not None:
            observers["exporter"].add_telemetry(telemetry)
        observers["exporter"].write(args.trace)
        print("wrote Perfetto trace: %s" % args.trace)
    if args.report:
        from repro.metrics.report import build_run_report, write_report

        run_report = build_run_report(
            result,
            config={"scheme": args.scheme, "n_windows": args.windows,
                    "m": args.m, "n": args.n, "workload": "spellcheck"},
            tracker=observers["tracker"],
            timeline=observers["timeline"],
            recorder=observers["recorder"],
            metrics=metrics_snapshot)
        write_report(run_report, args.report)
        print("wrote RunReport: %s" % args.report)
    if args.metrics_out:
        from repro.metrics.telemetry import write_snapshot

        write_snapshot(metrics_snapshot, args.metrics_out)
        print("wrote metrics snapshot: %s" % args.metrics_out)
    words = [w for w in report.decode("ascii").split("\n") if w]
    print("%d possibly-misspelled words:" % len(words))
    for word in words:
        print("  " + word)
    if args.stats:
        c = result.counters
        print()
        print("scheme=%s windows=%d M=%d N=%d" % (
            args.scheme, args.windows, args.m, args.n))
        print("cycles=%d switches=%d saves=%d traps=%d/%d "
              "avg-switch=%.1f" % (
                  c.total_cycles, c.context_switches, c.saves,
                  c.overflow_traps, c.underflow_traps,
                  c.avg_switch_cycles))
    if args.metrics:
        print()
        print("telemetry (%d instruments, %d profile samples):" % (
            len(telemetry.registry), telemetry.profiler.samples))
        for h in telemetry.registry.instruments():
            if h.kind == "histogram" and h.count:
                print("  %-46s n=%-6d p50=%-6s p99=%-6s max=%s" % (
                    h.name + str(sorted(h.labels.items())),
                    h.count, h.percentile(50), h.percentile(99), h.max))
        ops = telemetry.profiler.op_cycles
        if ops:
            total = sum(ops.values()) or 1
            top = sorted(ops.items(), key=lambda kv: -kv[1])[:6]
            print("  cycles by op: " + ", ".join(
                "%s %.0f%%" % (op, 100.0 * n / total) for op, n in top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
