"""Wiring of the spell-checker pipeline (Figure 10) and run helpers.

Buffer sizes reproduce the paper's six behaviours (§5.2, Table 1):

* high concurrency: M = N, small (16 / 4 / 1 bytes for coarse /
  medium / fine granularity);
* low concurrency: M = 1024 (the I/O threads become coarse and rarely
  switch), N = 16 / 4 / 1.

With a cyclic buffer of ``b`` bytes a source thread blocks about once
per ``b`` bytes, so e.g. T6 (a ~50 000-byte dictionary) context-
switches ~50 001 / ~12 501 / ~3 126 / ~49 times at b = 1 / 4 / 16 /
1024 — the exact column structure of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.spellcheck.corpus import (
    DEFAULT_SEED,
    DICT_SIZE,
    generate_corpus,
    generate_dictionaries,
)
from repro.apps.spellcheck.delatex import delatex_thread
from repro.apps.spellcheck.io_threads import file_sink_thread, file_source_thread
from repro.apps.spellcheck.spell import spell1_thread, spell2_thread
from repro.runtime.kernel import Kernel, RunResult

#: paper thread names, in spawn (and therefore initial FIFO) order
THREAD_NAMES = ("T1.delatex", "T2.spell1", "T3.spell2",
                "T4.input", "T5.output", "T6.dict1", "T7.dict2")

#: (concurrency, granularity) -> (M, N)
BUFFER_CONFIGS: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("high", "coarse"): (16, 16),
    ("high", "medium"): (4, 4),
    ("high", "fine"): (1, 1),
    ("low", "coarse"): (1024, 16),
    ("low", "medium"): (1024, 4),
    ("low", "fine"): (1024, 1),
}


@dataclass(frozen=True)
class SpellConfig:
    """One spell-checker workload configuration."""

    m: int
    n: int
    scale: float = 1.0
    seed: int = DEFAULT_SEED
    read_chunk: int = 64

    @classmethod
    def named(cls, concurrency: str, granularity: str,
              scale: float = 1.0, seed: int = DEFAULT_SEED) -> "SpellConfig":
        m, n = BUFFER_CONFIGS[(concurrency, granularity)]
        return cls(m=m, n=n, scale=scale, seed=seed)


def build_spellchecker(kernel: Kernel, config: SpellConfig) -> Dict[str, object]:
    """Spawn T1–T7 and S1–S6 into the kernel; returns the parts."""
    corpus = generate_corpus(config.seed, config.scale)
    dict1, dict2, _ = generate_dictionaries(
        config.seed, size=max(200, int(round(DICT_SIZE * config.scale))))

    s1 = kernel.stream(config.m, "S1")
    s2 = kernel.stream(config.n, "S2")
    s3 = kernel.stream(config.n, "S3")
    s4 = kernel.stream(config.m, "S4")
    s5 = kernel.stream(config.m, "S5")
    s6 = kernel.stream(config.m, "S6")

    rc = config.read_chunk
    threads = [
        kernel.spawn(delatex_thread, s1, s2, rc, name=THREAD_NAMES[0]),
        kernel.spawn(spell1_thread, s5, s2, s3, rc, name=THREAD_NAMES[1]),
        kernel.spawn(spell2_thread, s6, s3, s4, rc, name=THREAD_NAMES[2]),
        kernel.spawn(file_source_thread, s1, corpus, name=THREAD_NAMES[3]),
        kernel.spawn(file_sink_thread, s4, rc, name=THREAD_NAMES[4]),
        kernel.spawn(file_source_thread, s5, dict1, name=THREAD_NAMES[5]),
        kernel.spawn(file_source_thread, s6, dict2, name=THREAD_NAMES[6]),
    ]
    return {
        "streams": {"S1": s1, "S2": s2, "S3": s3,
                    "S4": s4, "S5": s5, "S6": s6},
        "threads": threads,
        "corpus": corpus,
        "dicts": (dict1, dict2),
    }


def run_spellchecker(n_windows: int, scheme: str, config: SpellConfig,
                     queue_policy=None, allocation=None,
                     verify_registers: bool = False,
                     max_steps: Optional[int] = None,
                     instrument=None, faults=None, audit: bool = False,
                     watchdog: Optional[int] = None, crash_dir=None,
                     crash_config=None,
                     core: Optional[str] = None,
                     analyze: bool = False,
                     backend: Optional[str] = None,
                     ) -> Tuple[RunResult, bytes]:
    """Build and run the pipeline; returns (result, misspelling report).

    ``verify_registers`` defaults to False here (unlike the kernel
    default) because the evaluation sweeps are large; the test suite
    runs the pipeline with verification on.

    ``instrument``, when given, is called with the kernel before any
    thread is spawned — the hook observability consumers use to
    subscribe to ``kernel.events`` or attach tracker/timeline.

    ``faults``/``audit``/``watchdog``/``crash_dir`` are the robustness
    knobs, forwarded to the kernel (see :mod:`repro.faults`).  When
    ``crash_dir`` is set and no explicit ``crash_config`` is given, a
    replayable workload description is embedded in any crash bundle.

    ``core`` selects the execution core (see
    :mod:`repro.runtime.batch`) — None picks up ``$REPRO_CORE`` or the
    batched default.  ``backend`` selects the execution backend
    ("compiled"/"pure"; see :mod:`repro.runtime.backend`) — None picks
    up ``$REPRO_BACKEND`` or auto-detects.

    ``analyze`` runs the static stream-topology check
    (:mod:`repro.analysis.topology`) before the first step; a
    guaranteed deadlock raises ``AnalysisError`` instead of running.
    """
    if crash_dir is not None and crash_config is None:
        crash_config = {
            "workload": "spellcheck", "scheme": scheme,
            "n_windows": n_windows, "m": config.m, "n": config.n,
            "scale": config.scale, "seed": config.seed,
            "verify_registers": verify_registers, "audit": audit,
            "watchdog": watchdog or 0,
        }
    kernel = Kernel(n_windows=n_windows, scheme=scheme,
                    queue_policy=queue_policy, allocation=allocation,
                    verify_registers=verify_registers,
                    faults=faults, audit=audit, watchdog=watchdog,
                    crash_dir=crash_dir, crash_config=crash_config,
                    core=core, analyze=analyze, backend=backend)
    if instrument is not None:
        instrument(kernel)
    build_spellchecker(kernel, config)
    result = kernel.run(max_steps=max_steps)
    return result, result.result_of("T5.output")
