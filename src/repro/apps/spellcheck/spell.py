"""T2 (spell1) and T3 (spell2): the two-stage spell check of §5.1.

* T3 accepts a word if it is in the base dictionary (dict2) or if
  naive suffix stripping produces a stem that is — which would wrongly
  accept malformed derivatives ("runing", "trys", ...).
* T2 runs first and catches exactly those: a word that looks like a
  derivative (naive stem is a known base) but is not one of the *valid*
  derivative forms (dict1) is flagged as incorrect and forwarded to
  the output thread through T3, marked with a leading ``!``.

Both threads read their dictionary stream completely before starting
on words — the "reading the dictionaries" phase whose concurrency the
paper analyses separately (§5.2).
"""

from __future__ import annotations

from repro.apps.spellcheck.corpus import SUFFIXES, derive, naive_strip
from repro.runtime.ops import Call, CloseStream, Read, Tick, Write

BAD_MARK = b"!"


def load_dictionary(s_dict, read_chunk: int = 64):
    """Read a dictionary stream to EOF, building the word set.

    Input is re-buffered into fixed units so the call count (and the
    dynamic ``save`` count) is independent of the stream buffer size.
    """
    words = set()
    residue = b""
    buf = b""
    eof = False
    while not eof:
        data = yield Read(s_dict, read_chunk)
        if not data:
            eof = True
        else:
            buf += data
        while len(buf) >= read_chunk or (eof and buf):
            piece, buf = buf[:read_chunk], buf[read_chunk:]
            residue = yield Call(insert_chunk, words, residue + piece)
    if residue and not residue.startswith(b"#"):
        words.add(residue.decode("ascii"))
    return words


def insert_chunk(words, data):
    """Split a chunk into complete lines and insert them; the trailing
    partial line is handed back as residue."""
    lines = data.split(b"\n")
    residue = lines.pop()
    yield Tick(6 * len(data))
    for line in lines:
        if line and not line.startswith(b"#"):
            yield Call(insert_word, words, line)
    return residue


def insert_word(words, line):
    yield Tick(35)  # hash and probe
    words.add(line.decode("ascii"))
    return len(words)


def lookup(words, word: str):
    """Leaf hash probe."""
    yield Tick(30)
    return word in words


# -- T2: spell1 ------------------------------------------------------------


def spell1_thread(s_dict, s_in, s_out, read_chunk: int = 64):
    """Root procedure of T2."""
    bases = yield Call(load_dictionary, s_dict, read_chunk)
    flagged = 0
    passed = 0
    residue = b""
    while True:
        data = yield Read(s_in, read_chunk)
        if not data:
            break
        lines = (residue + data).split(b"\n")
        residue = lines.pop()
        for line in lines:
            if not line:
                continue
            bad = yield Call(check_derivative, line, bases)
            if bad:
                flagged += 1
                yield Write(s_out, BAD_MARK + line + b"\n")
            else:
                passed += 1
                yield Write(s_out, line + b"\n")
    yield CloseStream(s_out)
    return flagged, passed


def check_derivative(line, bases):
    """Is this word a *malformed* derivative?

    True when a naive stem of the word is a known derivable base (so T3
    would wrongly accept it via stripping) but no spelling rule derives
    the word from any known base — e.g. "moveing" (should be "moving")
    or "trys" (should be "tries").
    """
    word = line.decode("ascii")
    yield Tick(15)
    if not word.endswith(SUFFIXES):
        return False
    looks_derived = False
    for suffix in SUFFIXES:
        if not word.endswith(suffix) or len(word) <= len(suffix) + 2:
            continue
        stem = word[: -len(suffix)]
        candidates = [stem, stem + "e"]
        if stem.endswith("i"):
            candidates.append(stem[:-1] + "y")
        for base in candidates:
            if (yield Call(lookup, bases, base)):
                looks_derived = True
                if derive(base, suffix) == word:
                    return False  # a rule-correct derivative
    return looks_derived


# -- T3: spell2 --------------------------------------------------------------


def spell2_thread(s_dict, s_in, s_out, read_chunk: int = 64):
    """Root procedure of T3."""
    bases = yield Call(load_dictionary, s_dict, read_chunk)
    reported = 0
    accepted = 0
    residue = b""
    while True:
        data = yield Read(s_in, read_chunk)
        if not data:
            break
        lines = (residue + data).split(b"\n")
        residue = lines.pop()
        for line in lines:
            if not line:
                continue
            if line.startswith(BAD_MARK):
                # T2 already judged this one: pass it straight through.
                reported += 1
                yield Call(report_word, s_out, line[1:])
                continue
            ok = yield Call(check_word, line, bases)
            if ok:
                accepted += 1
            else:
                reported += 1
                yield Call(report_word, s_out, line)
    yield CloseStream(s_out)
    return reported, accepted


def check_word(line, bases):
    """Accept a word in the base dictionary or derivable from one."""
    word = line.decode("ascii")
    if (yield Call(lookup, bases, word)):
        return True
    for stem in naive_strip(word):
        if (yield Call(lookup, bases, stem)):
            return True
        # handle e-dropping and y->ie rewrites from derive()
        if stem.endswith("i") and (yield Call(lookup, bases,
                                              stem[:-1] + "y")):
            return True
        if (yield Call(lookup, bases, stem + "e")):
            return True
    return False


def report_word(s_out, line):
    """Send one misspelled word to the output thread."""
    yield Tick(30)
    yield Write(s_out, line + b"\n")
    return 1
