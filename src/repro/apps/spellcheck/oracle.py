"""Reference (sequential) execution of the spell-checker procedures.

Runs the *same* generator procedures as the multi-threaded pipeline,
but on a trivial synchronous trampoline with unbounded in-memory
streams and no register windows at all.  Comparing the pipeline output
against this oracle for every scheme and window count proves that
window management never corrupts application results.
"""

from __future__ import annotations

from typing import Tuple

from repro.apps.spellcheck.delatex import delatex_thread
from repro.apps.spellcheck.io_threads import file_sink_thread
from repro.apps.spellcheck.spell import spell1_thread, spell2_thread
from repro.runtime.ops import Call, CloseStream, Read, ReadLine, Tick, Write


class _FakeStream:
    """Unbounded FIFO; never blocks."""

    def __init__(self):
        self.data = bytearray()
        self.closed = False

    def pull(self, max_bytes):
        take = min(max_bytes, len(self.data))
        out = bytes(self.data[:take])
        del self.data[:take]
        return out


def run_procedure(root_gen):
    """Synchronously run one generator procedure tree to completion."""
    stack = [root_gen]
    send_value = None
    while stack:
        gen = stack[-1]
        try:
            cmd = gen.send(send_value)
        except StopIteration as stop:
            stack.pop()
            send_value = getattr(stop, "value", None)
            continue
        t = type(cmd)
        if t is Call:
            stack.append(cmd.factory(*cmd.args))
            send_value = None
        elif t is Tick:
            send_value = None
        elif t is Read:
            send_value = cmd.stream.pull(cmd.max_bytes)
        elif t is ReadLine:
            raise NotImplementedError("oracle streams are chunk-based")
        elif t is Write:
            cmd.stream.data.extend(cmd.data)
            send_value = None
        elif t is CloseStream:
            cmd.stream.closed = True
            send_value = None
        else:
            raise TypeError("unexpected op %r" % cmd)
    return send_value


def run_reference(corpus: bytes, dict1: bytes, dict2: bytes,
                  read_chunk: int = 64) -> Tuple[bytes, dict]:
    """Sequential spell check; returns (report bytes, thread results).

    Threads run to completion in topological order, which is legal
    because the fake streams are unbounded.
    """
    s1, s2, s3, s4, s5, s6 = (_FakeStream() for _ in range(6))
    s1.data.extend(corpus)
    s5.data.extend(dict1)
    s6.data.extend(dict2)
    results = {}
    results["T1.delatex"] = run_procedure(delatex_thread(s1, s2, read_chunk))
    results["T2.spell1"] = run_procedure(
        spell1_thread(s5, s2, s3, read_chunk))
    results["T3.spell2"] = run_procedure(
        spell2_thread(s6, s3, s4, read_chunk))
    report = run_procedure(file_sink_thread(s4, read_chunk))
    results["T5.output"] = report
    return report, results
