"""T4–T7: simulated file input and output (§5.1).

"These threads, instead of actually reading (writing) disks, merely
copy data from (to) their internal memory buffers into (from) the
stream.  These threads correspond to OS kernel threads, and their
internal buffers correspond to disk cache."

The copy unit is four bytes per leaf call, which matches the paper's
dynamic save counts for the I/O threads (Table 1: T4 made 10 127 saves
for a 40 500-byte file, T6/T7 12 502 each for ~50 000-byte
dictionaries — almost exactly one call per four bytes).
"""

from __future__ import annotations

from repro.runtime.ops import Call, CloseStream, Read, Tick, Write

COPY_UNIT = 4


def file_source_thread(s_out, data: bytes, unit: int = COPY_UNIT):
    """T4 / T6 / T7: push an in-memory file into a stream."""
    pos = 0
    size = len(data)
    while pos < size:
        pos += yield Call(put_unit, s_out, data[pos:pos + unit])
    yield CloseStream(s_out)
    return pos


def put_unit(s_out, chunk: bytes):
    """Leaf copy: disk-cache to stream."""
    yield Tick(3 * len(chunk))
    yield Write(s_out, chunk)
    return len(chunk)


def file_sink_thread(s_in, read_chunk: int = 64):
    """T5: drain a stream into an in-memory file; returns the bytes.

    Like the other filters, data is re-buffered into fixed units so the
    call count is independent of the stream buffer size.
    """
    collected = []
    buf = b""
    eof = False
    while not eof:
        data = yield Read(s_in, read_chunk)
        if not data:
            eof = True
        else:
            buf += data
        while len(buf) >= read_chunk or (eof and buf):
            piece, buf = buf[:read_chunk], buf[read_chunk:]
            yield Call(store_chunk, collected, piece)
    return b"".join(collected)


def store_chunk(collected, data: bytes):
    """Leaf copy: stream to disk cache."""
    yield Tick(3 * len(data))
    collected.append(data)
    return len(data)
