"""Workloads: the paper's multi-threaded spell checker and synthetic
workloads used for ablations and tests."""
