"""Bounded FIFO byte streams (the S1–S6 of the paper's Figure 10).

Each stream is a cyclic buffer of fixed capacity.  A thread writing to
a full stream blocks; a thread reading from an empty stream blocks.
Because scheduling is non-preemptive, "a thread execution continues
until an input (output) buffer becomes empty (full)" (§5.1) — the
buffer capacities M and N are therefore exactly the granularity and
concurrency knobs of the evaluation.
"""

from __future__ import annotations

from typing import List, Optional


class StreamClosedError(Exception):
    """Write attempted on a closed stream."""


class Stream:
    """A bounded cyclic FIFO byte buffer with blocking semantics."""

    __slots__ = ("capacity", "name", "_data", "closed", "read_waiters",
                 "write_waiters", "bytes_written", "bytes_read", "events",
                 "read_label", "write_label")

    def __init__(self, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("stream capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        #: precomputed ``blocked_on`` diagnostics labels, so blocking a
        #: thread never formats a string on the hot path
        self.read_label = "read %s" % (name or "stream")
        self.write_label = "write %s" % (name or "stream")
        self._data = bytearray()
        self.closed = False
        #: threads blocked on this stream (managed by the kernel)
        self.read_waiters: List[object] = []
        self.write_waiters: List[object] = []
        #: lifetime statistics
        self.bytes_written = 0
        self.bytes_read = 0
        #: trace-event bus (wired by ``kernel.stream``; None standalone)
        self.events = None

    # -- capacity queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    @property
    def space(self) -> int:
        return self.capacity - len(self._data)

    @property
    def is_empty(self) -> bool:
        return not self._data

    @property
    def is_full(self) -> bool:
        return len(self._data) >= self.capacity

    @property
    def at_eof(self) -> bool:
        return self.closed and not self._data

    # -- data transfer (non-blocking primitives; the kernel blocks) -----------

    def push(self, data: bytes) -> int:
        """Accept as much of ``data`` as fits; return the byte count."""
        if self.closed:
            raise StreamClosedError(
                "write to closed stream %r" % (self.name,))
        take = min(self.space, len(data))
        if take:
            self._data.extend(data[:take])
            self.bytes_written += take
        return take

    def pull(self, max_bytes: int) -> bytes:
        """Remove and return up to ``max_bytes`` (may be empty)."""
        take = min(max_bytes, len(self._data))
        if take == 0:
            return b""
        out = bytes(self._data[:take])
        del self._data[:take]
        self.bytes_read += take
        return out

    def pull_line(self) -> Optional[bytes]:
        """Remove and return one full line, or None if no complete line
        is buffered yet (at EOF the residue counts as a line)."""
        idx = self._data.find(b"\n")
        if idx < 0:
            if self.closed and self._data:
                out = bytes(self._data)
                self._data.clear()
                self.bytes_read += len(out)
                return out
            return None
        out = bytes(self._data[:idx + 1])
        del self._data[:idx + 1]
        self.bytes_read += len(out)
        return out

    def has_line(self) -> bool:
        return self._data.find(b"\n") >= 0 or (self.closed
                                               and bool(self._data))

    def close(self) -> None:
        was_open = not self.closed
        self.closed = True
        events = self.events
        if was_open and events is not None and events.active:
            events.emit("stream_close", stream=self.name,
                        written=self.bytes_written, read=self.bytes_read)

    def __repr__(self) -> str:
        return "Stream(%r, %d/%d%s)" % (
            self.name, len(self._data), self.capacity,
            ", closed" if self.closed else "")
