"""Runtime-level errors."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError


class RuntimeFault(ReproError):
    """A thread or the kernel did something structurally invalid."""


class DeadlockError(RuntimeFault):
    """No thread is ready and at least one is blocked.

    ``blocked`` (when the kernel raises it) holds one dict per blocked
    thread: ``{"thread", "op", "on", "detail"}`` — the op it waits on,
    the stream or thread it waits for, and the stream's fill state —
    so bundles and messages both name exactly what wedged.
    """

    def __init__(self, message: str = "",
                 blocked: Optional[List[Dict[str, Any]]] = None,
                 **context: Any):
        super().__init__(message, **context)
        self.blocked = list(blocked or [])


class LivelockError(RuntimeFault):
    """The kernel kept stepping but no thread made progress.

    Raised by the watchdog after ``max_stall`` consecutive steps with
    no call, return, tick, spawn or completed blocking operation —
    threads spinning through yields without ever moving data.
    """
