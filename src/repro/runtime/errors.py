"""Runtime-level errors."""


class RuntimeFault(Exception):
    """A thread or the kernel did something structurally invalid."""


class DeadlockError(RuntimeFault):
    """No thread is ready and at least one is blocked."""
