"""Non-preemptive multithreading runtime over the window simulator.

Application code is written as Python *generator procedures*: a
procedure yields :mod:`repro.runtime.ops` commands (call a
subprocedure, read/write a stream, charge compute cycles) and returns
its result with a plain ``return``.  The kernel trampoline executes
every procedure call as a simulated ``save`` and every return as a
simulated ``restore`` — so window traffic, traps and context switches
arise from real, data-dependent control flow, exactly as in the
paper's evaluation (§5).
"""

from repro.runtime.errors import (
    DeadlockError,
    LivelockError,
    RuntimeFault,
)
from repro.runtime.kernel import Kernel, RunResult
from repro.runtime.ops import (
    Call,
    CloseStream,
    FlushHint,
    Join,
    Read,
    ReadLine,
    Spawn,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.streams import Stream, StreamClosedError
from repro.runtime.thread import (
    BLOCKED,
    DONE,
    NEW,
    READY,
    RUNNING,
    SimThread,
)

__all__ = [
    "DeadlockError",
    "LivelockError",
    "RuntimeFault",
    "Kernel",
    "RunResult",
    "Call",
    "CloseStream",
    "FlushHint",
    "Join",
    "Spawn",
    "Read",
    "ReadLine",
    "Tick",
    "Write",
    "YieldCPU",
    "ReadyQueue",
    "Stream",
    "StreamClosedError",
    "SimThread",
    "NEW",
    "READY",
    "RUNNING",
    "BLOCKED",
    "DONE",
]
