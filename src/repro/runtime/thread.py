"""Simulated threads: a stack of generator procedures plus window state."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.windows.thread_windows import ThreadWindows

NEW = "new"
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"


class SimThread:
    """One thread of the simulated application."""

    __slots__ = ("tid", "name", "factory", "args", "windows", "state",
                 "gen_stack", "resume_value", "pending", "blocked_on",
                 "result", "flush_on_switch", "join_waiters",
                 "calls", "returns", "blocks")

    def __init__(self, tid: int, name: str, factory, args=()):
        self.tid = tid
        self.name = name or ("thread-%d" % tid)
        self.factory = factory
        self.args = tuple(args)
        self.windows = ThreadWindows(tid)
        self.state = NEW
        #: live generator stack, caller-first
        self.gen_stack: List[Any] = []
        #: value to send into the top generator at the next resume
        self.resume_value: Any = None
        #: in-flight blocking operation, resumed before the generator is
        #: (op kind, stream, payload...)
        self.pending: Optional[tuple] = None
        #: what the thread is blocked on, for diagnostics
        self.blocked_on: Optional[str] = None
        #: return value of the root procedure
        self.result: Any = None
        #: §4.4: flush windows at the next switch-out
        self.flush_on_switch = False
        #: threads blocked in Join on this thread
        self.join_waiters: List["SimThread"] = []
        #: per-thread statistics
        self.calls = 0
        self.returns = 0
        self.blocks = 0

    @property
    def alive(self) -> bool:
        return self.state != DONE

    def start_root(self) -> None:
        """Instantiate the root generator (runs in the first frame)."""
        self.gen_stack.append(self.factory(*self.args))

    def __repr__(self) -> str:
        return "SimThread(%d, %r, %s, depth=%d)" % (
            self.tid, self.name, self.state, len(self.gen_stack))
