"""Commands a generator procedure may yield to the kernel.

These are deliberately tiny value objects: the kernel dispatches on
``type(cmd)`` in its hot loop.
"""

from __future__ import annotations


class Call:
    """Call a subprocedure: ``factory(*args)`` must return a generator.

    The kernel writes ``args`` into the caller's out registers,
    executes a simulated ``save`` (which may overflow-trap), and runs
    the callee; the callee's return value travels back through the in/
    out register overlap across the ``restore``.
    """

    __slots__ = ("factory", "args")

    def __init__(self, factory, *args):
        self.factory = factory
        self.args = args


class Tick:
    """Charge ``cycles`` of straight-line computation."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        self.cycles = cycles


class Read:
    """Read up to ``max_bytes`` from a stream; blocks while it is empty.

    Resumes with a ``bytes`` object (``b""`` only at end-of-stream).
    """

    __slots__ = ("stream", "max_bytes")

    def __init__(self, stream, max_bytes: int = 1 << 30):
        self.stream = stream
        self.max_bytes = max_bytes


class ReadLine:
    """Read one ``\\n``-terminated line (the trailing newline included);
    blocks until a full line or end-of-stream is available.  Resumes
    with ``bytes`` (``b""`` only at end-of-stream)."""

    __slots__ = ("stream",)

    def __init__(self, stream):
        self.stream = stream


class Write:
    """Write all of ``data`` to a stream; blocks whenever it is full."""

    __slots__ = ("stream", "data")

    def __init__(self, stream, data: bytes):
        self.stream = stream
        self.data = data


class CloseStream:
    """Close a stream for writing; readers then see end-of-stream."""

    __slots__ = ("stream",)

    def __init__(self, stream):
        self.stream = stream


class YieldCPU:
    """Voluntarily give up the CPU (stays ready)."""

    __slots__ = ()


class Spawn:
    """Create a new thread running ``factory(*args)``; resumes with the
    new thread's handle (non-preemptive: the spawner keeps the CPU)."""

    __slots__ = ("factory", "args", "name")

    def __init__(self, factory, *args, name: str = ""):
        self.factory = factory
        self.args = args
        self.name = name


class Join:
    """Wait until ``thread`` finishes; resumes with its result."""

    __slots__ = ("thread",)

    def __init__(self, thread):
        self.thread = thread


class FlushHint:
    """Request the flush-type context switch (§4.4) at the next
    suspension: the thread expects to sleep for a long time, so its
    windows are flushed at switch-out instead of being left in place."""

    __slots__ = ("flush",)

    def __init__(self, flush: bool = True):
        self.flush = flush
