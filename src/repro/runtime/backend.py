"""Execution-backend selection: the optional compiled fast path.

The simulator's proven hot path — the fused batched dispatch loop of
:meth:`repro.runtime.kernel.Kernel._run_batched` and the ISA fetch loop
of :meth:`repro.isa.machine.Machine._run_thread` — has an optional
compiled twin in the C extension :mod:`repro._fast` (built from
``src/repro/_fastcore.c``; see ``setup.py`` / the ``[compiled]``
extra).  Both backends are required to be *bit-identical*; the
differential harness (``tests/core/test_batched_vs_trampoline.py``)
enforces it the same way it pins the batched core to the step-granular
reference.

Selection precedence (highest first):

1. an explicit ``backend=`` argument on ``Kernel``/``Machine``;
2. the ``$REPRO_BACKEND`` environment variable (how CI A/Bs a whole
   run without plumbing);
3. auto-detection — ``"compiled"`` when :mod:`repro._fast` imports,
   ``"pure"`` otherwise.

Fallback is always graceful: requesting ``"compiled"`` without the
extension built warns once and runs pure, and configurations that need
the step-granular loop (fault injection, invariant audit, watchdog)
transparently run on the pure path — with a single warning when the
compiled backend was requested explicitly.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

#: the two execution backends (order: preferred first)
BACKENDS = ("compiled", "pure")

#: environment override consulted when no explicit ``backend=`` is given
ENV_BACKEND = "REPRO_BACKEND"

_fast = None
_fast_checked = False


def load_fast():
    """Import and cache :mod:`repro._fast`; ``None`` when not built."""
    global _fast, _fast_checked
    if not _fast_checked:
        _fast_checked = True
        try:
            from repro import _fast as module  # type: ignore[attr-defined]
        except ImportError:
            _fast = None
        else:
            _fast = module
    return _fast


def compiled_available() -> bool:
    """True when the compiled extension is importable."""
    return load_fast() is not None


def requested_backend(backend: Optional[str] = None) -> Optional[str]:
    """The raw request: explicit argument > ``$REPRO_BACKEND`` > None.

    ``None`` means "auto-detect".  Raises ``ValueError`` on anything
    other than the names in :data:`BACKENDS`.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or None
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            "unknown execution backend %r; expected one of %s"
            % (backend, "/".join(BACKENDS)))
    return backend


def select_backend(backend: Optional[str] = None) -> str:
    """Resolve the effective backend name (``"compiled"``/``"pure"``).

    Applies the precedence above; an explicit/env request for the
    compiled backend on a build without the extension warns once and
    falls back to pure.
    """
    requested = requested_backend(backend)
    if requested == "pure":
        return "pure"
    available = compiled_available()
    if requested == "compiled" and not available:
        warnings.warn(
            "compiled backend requested but repro._fast is not built; "
            "falling back to the pure-Python backend "
            "(build it with: REPRO_BUILD_FAST=1 pip install -e . "
            "or python setup.py build_ext --inplace)",
            RuntimeWarning, stacklevel=3)
        return "pure"
    return "compiled" if available else "pure"


def warn_step_granular_fallback(reason: str) -> None:
    """One warning when an explicitly-compiled run needs the pure path.

    Fault injection, the invariant audit and the watchdog all observe
    individual steps, so those configurations run the step-granular
    pure-Python loop regardless of backend; the run is still correct —
    the compiled and pure paths are bit-identical — just not
    accelerated.
    """
    warnings.warn(
        "compiled backend: %s requires the step-granular execution "
        "path; this run uses the pure-Python loop (results are "
        "identical)" % reason,
        RuntimeWarning, stacklevel=3)
