"""Cold-path raise helpers for the compiled backend (:mod:`repro._fast`).

The C loop in ``src/repro/_fastcore.c`` mirrors
:meth:`repro.runtime.kernel.Kernel._run_batched` instruction for
instruction, but error construction is deliberately delegated back to
Python: every message below is a byte-for-byte copy of the batched
loop's raise sites, so the differential harness's error-identity
assertions (type + message) hold across backends without duplicating
``%``-formatting semantics in C.

Each helper raises unconditionally; the C caller sees the NULL return
and unwinds with its accumulator folds, exactly like the pure loop's
``finally`` blocks.
"""

from __future__ import annotations

from repro.runtime.errors import RuntimeFault
from repro.runtime.streams import StreamClosedError
from repro.windows.errors import WindowGeometryError, WindowIntegrityError


def raise_finish_depth(thread, tw):
    raise WindowIntegrityError(
        "thread %s finished at call depth %d" % (thread.name, tw.depth))


def raise_bad_signature(thread, tw, sig):
    raise WindowIntegrityError(
        "thread %s frame signature corrupted: %r at depth %d"
        % (thread.name, sig, tw.depth),
        thread=thread.name, depth=tw.depth)


def raise_restore_depth(tw):
    raise WindowGeometryError(
        "thread %d executed restore at depth %d" % (tw.tid, tw.depth))


def raise_return_corrupt(thread, tw, got, value):
    raise WindowIntegrityError(
        "return value of %s corrupted across restore: %r != %r"
        % (thread.name, got, value),
        thread=thread.name, depth=tw.depth)


def raise_overflow_invalid(target, tw):
    raise WindowGeometryError(
        "overflow handler left target window %d invalid" % target,
        window=target, thread=tw.tid)


def raise_arg_corrupt(i, thread, tw, got, a):
    raise WindowIntegrityError(
        "argument %d of %s corrupted across save: %r != %r"
        % (i, thread.name, got, a),
        thread=thread.name, argument=i, depth=tw.depth)


def raise_write_closed(stream):
    raise StreamClosedError(
        "write to closed stream %r" % (stream.name,))


def raise_readline_too_long(stream):
    raise RuntimeFault(
        "readline on %r: line longer than the stream capacity"
        % stream.name)


def raise_join_self(thread):
    raise RuntimeFault("%s tried to join itself" % thread.name)


def raise_bad_op(thread, cmd):
    raise RuntimeFault(
        "thread %s yielded %r; expected a runtime op"
        % (thread.name, cmd))


def raise_unknown_pending(kind):
    raise RuntimeFault("unknown pending op %r" % kind)
