"""The multi-tasking kernel: trampoline execution + non-preemptive
scheduling over the window simulator.

Every procedure call a thread makes becomes a simulated ``save`` and
every return a ``restore``; blocking stream operations suspend the
thread and context-switch through the window-management scheme.  The
register file is used *functionally*: arguments travel through the
caller's outs into the callee's ins, return values travel back through
the in/out overlap across the restore, and each frame carries a
signature in a local register — so a window-management bug corrupts
application results instead of passing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import make_scheme
from repro.core.invariants import check_invariants
from repro.core.scheme import Scheme
from repro.errors import ReproError
from repro.metrics.counters import Counters
from repro.runtime.errors import DeadlockError, LivelockError, RuntimeFault
from repro.runtime.ops import (
    Call,
    CloseStream,
    FlushHint,
    Join,
    Read,
    ReadLine,
    Spawn,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.streams import Stream
from repro.runtime.thread import (
    BLOCKED,
    DONE,
    RUNNING,
    SimThread,
)
from repro.windows.cpu import WindowCPU
from repro.windows.errors import WindowError, WindowIntegrityError


@dataclass
class RunResult:
    """Outcome of a completed simulation."""

    counters: Counters
    threads: List[SimThread]
    steps: int
    slackness_samples: List[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.counters.total_cycles

    def result_of(self, name: str) -> Any:
        for t in self.threads:
            if t.name == name:
                return t.result
        raise KeyError(name)

    def thread_results(self) -> Dict[str, Any]:
        return {t.name: t.result for t in self.threads}


class Kernel:
    """Owns the CPU, the scheme, the ready queue and all threads."""

    def __init__(self, n_windows: int = 8, scheme: str = "SP",
                 queue_policy=None, cost_model=None,
                 counters: Optional[Counters] = None,
                 allocation=None, verify_registers: bool = True,
                 scheme_kwargs: Optional[dict] = None,
                 faults=None, audit: bool = False,
                 watchdog: Optional[int] = None,
                 crash_dir=None,
                 crash_config: Optional[dict] = None):
        self.counters = counters if counters is not None else Counters()
        self.cpu = WindowCPU(n_windows, cost_model, self.counters)
        kwargs = dict(scheme_kwargs or {})
        if isinstance(scheme, Scheme):
            self.scheme = scheme
        elif scheme.upper() == "NS":
            self.scheme = make_scheme("NS", self.cpu, **kwargs)
        else:
            if allocation is not None:
                kwargs.setdefault("allocation", allocation)
            self.scheme = make_scheme(scheme, self.cpu, **kwargs)
        self.ready = ReadyQueue(queue_policy)
        self.threads: List[SimThread] = []
        self.current: Optional[SimThread] = None
        self.last_suspended: Optional[SimThread] = None
        self.verify_registers = verify_registers
        #: the structured trace-event bus (shared with the CPU, the
        #: scheme, the ready queue and every stream); disabled until a
        #: consumer subscribes
        self.events = self.cpu.events
        self.ready.bind_events(self.events)
        #: mirror of ``events.active`` (see EventBus.watch_activity)
        self._tracing = False
        self.events.watch_activity(self._set_tracing)
        self._tracker = None
        self._timeline = None
        #: optional :class:`repro.metrics.telemetry.RunTelemetry`; the
        #: profiler is mirrored into ``_profiler`` so the step loop's
        #: guard is a hoisted-local None check (attach_telemetry)
        self.telemetry = None
        self._profiler = None
        self._running = False
        self._steps = 0
        #: progress clock: ticks, calls, returns, spawns and completed
        #: blocking operations move it; yield storms do not
        self._progress = 0
        #: optional fault injector (see :mod:`repro.faults`), shared
        #: with the CPU, the scheme's store paths and the ready queue
        self.faults = faults
        if faults is not None:
            faults.attach(self)
        #: run check_invariants after every dispatch, call and return
        self.audit = audit
        self._watchdog = None
        if watchdog:
            from repro.faults.watchdog import Watchdog

            self._watchdog = Watchdog(watchdog)
        #: where crash bundles land (None: no bundles); crash_config is
        #: embedded in the bundle so a replay can rebuild the workload
        self.crash_dir = crash_dir
        self.crash_config = dict(crash_config or {})
        self._flight = None
        if crash_dir is not None:
            from repro.metrics.events import RingRecorder

            self._flight = RingRecorder()
            self.events.subscribe(self._flight)

    def _set_tracing(self, active: bool) -> None:
        self._tracing = active

    # -- observability ------------------------------------------------------

    @property
    def tracker(self):
        """Optional :class:`repro.metrics.behavior.BehaviorTracker`.

        Assigning one subscribes it to the event bus (the legacy
        hand-wired attribute is kept as this alias)."""
        return self._tracker

    @tracker.setter
    def tracker(self, tracker) -> None:
        if self._tracker is not None:
            self.events.unsubscribe(self._tracker)
        self._tracker = tracker
        if tracker is not None:
            self.events.subscribe(tracker)

    @property
    def timeline(self):
        """Optional :class:`repro.metrics.tracing.OccupancyTimeline`,
        subscribed to the event bus when assigned."""
        return self._timeline

    @timeline.setter
    def timeline(self, timeline) -> None:
        if self._timeline is not None:
            self.events.unsubscribe(self._timeline)
        self._timeline = timeline
        if timeline is not None:
            timeline.cpu = self.cpu
            self.events.subscribe(timeline)

    def attach_telemetry(self, telemetry) -> None:
        """Arm aggregate metrics (:mod:`repro.metrics.telemetry`).

        Hands the scheme its per-scheme switch/trap/occupancy
        histograms and arms the cycle-domain sampling profiler; until
        this is called every instrumented site holds ``None`` and the
        hot paths pay a single ``is None`` branch.
        """
        from repro.metrics.telemetry import arm_scheme_histograms

        self.telemetry = telemetry
        arm_scheme_histograms(telemetry, self.scheme,
                              self.cpu.n_windows)
        profiler = telemetry.profiler
        if profiler is not None:
            profiler.bind(self.cpu)
        self._profiler = profiler

    def enable_tracing(self, recorder=None):
        """Subscribe (and return) a TraceRecorder capturing every event."""
        from repro.metrics.events import TraceRecorder

        if recorder is None:
            recorder = TraceRecorder()
        self.events.subscribe(recorder)
        return recorder

    # -- setup ------------------------------------------------------------

    def spawn(self, factory, *args, name: str = "") -> SimThread:
        """Create a thread running ``factory(*args)`` (a generator).

        Before ``run()`` only; running threads use the ``Spawn`` op.
        """
        if self._running:
            raise RuntimeFault(
                "spawn() after run() started; yield Spawn(...) instead")
        return self._spawn(factory, args, name)

    def _spawn(self, factory, args, name: str) -> SimThread:
        thread = SimThread(len(self.threads), name, factory, args)
        self.threads.append(thread)
        self.scheme.register(thread.windows)
        if self._tracing:
            parent = self.current.tid if self.current is not None else None
            self.events.emit("spawn", tid=thread.tid, name=thread.name,
                             parent=parent)
        self.ready.push_new(thread)
        return thread

    def stream(self, capacity: int, name: str = "") -> Stream:
        """Convenience stream constructor (wired to the event bus)."""
        stream = Stream(capacity, name)
        stream.events = self.events
        return stream

    # -- main loop -----------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run every thread to completion; raises on deadlock.

        Any escaping :class:`~repro.errors.ReproError` is enriched with
        crash context (step, cycle, running thread, CWP) and — when
        ``crash_dir`` is set — dumped as a replayable crash bundle whose
        path lands on the exception as ``bundle_path``.
        """
        self._running = True
        try:
            return self._run_to_completion(max_steps)
        except ReproError as exc:
            self._capture_crash(exc)
            raise

    def _run_to_completion(self, max_steps: Optional[int]) -> RunResult:
        while True:
            if self.current is None:
                if not self.ready:
                    blocked = [t for t in self.threads if t.state == BLOCKED]
                    if blocked:
                        raise self._deadlock_error(blocked)
                    break
                self._dispatch(self.ready.pop())
            self._run_quantum(max_steps)
            if max_steps is not None and self._steps >= max_steps:
                raise RuntimeFault("step budget of %d exceeded" % max_steps)
        if self._tracing:
            self.events.emit("run_end")
        self.counters.fold_thread_stats(t.windows for t in self.threads)
        return RunResult(self.counters, list(self.threads), self._steps,
                         list(self.ready.slackness_samples))

    # -- failure reporting --------------------------------------------------

    def _deadlock_error(self, blocked: List[SimThread]) -> DeadlockError:
        """Build a DeadlockError naming every wedged thread and what it
        waits for — including the fill state of the stream involved."""
        details = []
        for t in blocked:
            pending = t.pending or (None,)
            kind = pending[0]
            if kind == "join":
                target = pending[1]
                entry = {"thread": t.name, "op": "join", "on": target.name,
                         "detail": "target is %s" % target.state}
            elif kind in ("read", "readline", "write"):
                stream = pending[1]
                if kind == "write":
                    state = "full" if stream.is_full else (
                        "%d/%d bytes buffered"
                        % (len(stream), stream.capacity))
                else:
                    state = "empty" if stream.is_empty else (
                        "%d bytes buffered" % len(stream))
                if stream.closed:
                    state += ", closed"
                entry = {"thread": t.name, "op": kind,
                         "on": stream.name or "stream",
                         "detail": "stream %s (capacity %d)"
                                   % (state, stream.capacity)}
            else:
                entry = {"thread": t.name, "op": kind or "?",
                         "on": t.blocked_on or "?", "detail": ""}
            details.append(entry)
        lines = "; ".join(
            "%s waits to %s %r (%s)" % (d["thread"], d["op"], d["on"],
                                        d["detail"])
            if d["detail"] else
            "%s waits to %s %r" % (d["thread"], d["op"], d["on"])
            for d in details)
        return DeadlockError(
            "deadlock: no ready threads; blocked: %s" % lines,
            blocked=details, threads=len(self.threads),
            blocked_count=len(details))

    def _capture_crash(self, exc: ReproError) -> None:
        """Enrich an escaping error and (optionally) write its bundle."""
        self.counters.fold_thread_stats(t.windows for t in self.threads)
        running = self.current
        exc.with_context(step=self._steps,
                         cycle=self.counters.total_cycles)
        if running is not None:
            exc.with_context(thread=running.name, cwp=self.cpu.wf.cwp)
        if self.faults is not None and self.faults.fired:
            exc.with_context(faults_fired=len(self.faults.fired))
        exc.bundle_path = None
        if self.crash_dir is not None:
            from repro.faults.bundle import write_crash_bundle

            exc.bundle_path = write_crash_bundle(self.crash_dir, exc, self)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, thread: SimThread) -> None:
        out = self.last_suspended
        assert out is not thread, "self-switch should be impossible"
        out_tw = out.windows if out is not None else None
        flush = out.flush_on_switch if out is not None else False
        self.scheme.context_switch(out_tw, thread.windows, flush_out=flush)
        self.last_suspended = None
        self.current = thread
        thread.state = RUNNING
        if not thread.gen_stack:
            thread.start_root()
            if self.verify_registers:
                self.cpu.write_local(0, ("sig", thread.tid, 1))
        if self._tracing:
            self.events.emit("dispatch", tid=thread.tid,
                             depth=thread.windows.depth)
        if self.audit:
            self._audit()

    def _audit(self) -> None:
        """Continuous invariant audit: the full geometry check after
        every dispatch, call and return (expensive; opt-in)."""
        try:
            check_invariants(self.cpu, self.scheme,
                             [t.windows for t in self.threads])
        except WindowError as exc:
            raise exc.with_context(audit=True, step=self._steps,
                                   cycle=self.counters.total_cycles)

    # -- quantum execution ----------------------------------------------------------

    def _run_quantum(self, max_steps: Optional[int]) -> None:
        """Run the current thread until it blocks, yields or finishes."""
        thread = self.current
        assert thread is not None
        tw = thread.windows
        cpu = self.cpu
        counters = cpu.counters
        verify = self.verify_registers
        watchdog = self._watchdog
        prof = self._profiler
        gen_stack = thread.gen_stack
        try:
            while True:
                self._steps += 1
                if max_steps is not None and self._steps >= max_steps:
                    return
                if watchdog is not None and watchdog.expired(self._progress,
                                                             self._steps):
                    raise LivelockError(
                        "no progress for %d steps (watchdog max_stall=%d); "
                        "threads: %s" % (
                            watchdog.stalled_for(self._progress, self._steps),
                            watchdog.max_stall,
                            ", ".join("%s=%s" % (t.name, t.state)
                                      for t in self.threads)),
                        max_stall=watchdog.max_stall,
                        progress=self._progress)
                if thread.pending is not None:
                    if not self._continue_pending(thread):
                        self._block(thread)
                        return
                    self._progress += 1
                gen = gen_stack[-1]
                try:
                    cmd = gen.send(thread.resume_value)
                except StopIteration as stop:
                    if self._handle_return(thread, getattr(stop, "value", None)):
                        return  # thread finished
                    continue
                thread.resume_value = None
                t = type(cmd)
                if t is Tick:
                    counters.compute_cycles += cmd.cycles
                    self._progress += 1
                elif t is Call:
                    self._do_call(thread, cmd)
                elif t is Read:
                    thread.pending = ("read", cmd.stream, cmd.max_bytes)
                elif t is Write:
                    thread.pending = ("write", cmd.stream, cmd.data, 0)
                elif t is ReadLine:
                    thread.pending = ("readline", cmd.stream)
                elif t is CloseStream:
                    self._do_close(cmd.stream)
                elif t is YieldCPU:
                    if self.ready:
                        if self._tracing:
                            self.events.emit("yield", tid=thread.tid)
                        self.ready.push_yielded(thread)
                        self.last_suspended = thread
                        self.current = None
                        return
                    # Nobody else to run: keep going, no switch, no cost.
                elif t is FlushHint:
                    thread.flush_on_switch = cmd.flush
                elif t is Spawn:
                    thread.resume_value = self._spawn(
                        cmd.factory, cmd.args, cmd.name)
                    self._progress += 1
                elif t is Join:
                    if cmd.thread is thread:
                        raise RuntimeFault(
                            "%s tried to join itself" % thread.name)
                    thread.pending = ("join", cmd.thread)
                else:
                    raise RuntimeFault(
                        "thread %s yielded %r; expected a runtime op"
                        % (thread.name, cmd))
        finally:
            # The profiler samples on quantum boundaries only — the
            # per-step path carries zero profiler code, and a quantum
            # (one thread's uninterrupted run) is the natural unit of
            # cycle attribution.  Stacks are captured where threads
            # block or yield; per-op attribution is derived exactly
            # from the run counters at finalize time.
            if prof is not None:
                prof._cd -= 1
                if prof._cd <= 0:
                    prof._check(thread, None, counters)

    # -- call / return ----------------------------------------------------------

    def _do_call(self, thread: SimThread, cmd: Call) -> None:
        thread.calls += 1
        self._progress += 1
        cpu = self.cpu
        tw = thread.windows
        args = cmd.args
        if self.verify_registers:
            for i, a in enumerate(args[:8]):
                cpu.write_out(i, a)
        cpu.save(tw)
        if self.verify_registers:
            for i, a in enumerate(args[:8]):
                got = cpu.read_in(i)
                if got is not a and got != a:
                    raise WindowIntegrityError(
                        "argument %d of %s corrupted across save: %r != %r"
                        % (i, thread.name, got, a),
                        thread=thread.name, argument=i, depth=tw.depth)
            cpu.write_local(0, ("sig", thread.tid, tw.depth))
        if self.audit:
            self._audit()
        thread.gen_stack.append(cmd.factory(*args))
        thread.resume_value = None

    def _handle_return(self, thread: SimThread, value: Any) -> bool:
        """Pop a finished procedure; True when the thread is done."""
        thread.gen_stack.pop()
        self._progress += 1
        tw = thread.windows
        cpu = self.cpu
        if not thread.gen_stack:
            if self.verify_registers and tw.depth != 1:
                raise WindowIntegrityError(
                    "thread %s finished at call depth %d"
                    % (thread.name, tw.depth))
            thread.result = value
            thread.state = DONE
            self.scheme.retire(tw)
            self.current = None
            events_on = self._tracing
            if events_on:
                self.events.emit("retire", tid=thread.tid,
                                 name=thread.name)
            for waiter in thread.join_waiters:
                waiter.blocked_on = None
                if events_on:
                    self.events.emit("wake", tid=waiter.tid,
                                     on=thread.name, op="join")
                self.ready.push_woken(waiter)
            del thread.join_waiters[:]
            return True
        thread.returns += 1
        if self.verify_registers:
            sig = cpu.read_local(0)
            if sig != ("sig", thread.tid, tw.depth):
                raise WindowIntegrityError(
                    "thread %s frame signature corrupted: %r at depth %d"
                    % (thread.name, sig, tw.depth),
                    thread=thread.name, depth=tw.depth)
        wf = cpu.wf
        wf._regs[wf._in_base[wf.cwp]] = value
        cpu.restore(tw)
        got = wf._regs[wf._out_base[wf.cwp]]
        if self.verify_registers and got is not value and got != value:
            raise WindowIntegrityError(
                "return value of %s corrupted across restore: %r != %r"
                % (thread.name, got, value),
                thread=thread.name, depth=tw.depth)
        thread.resume_value = got
        if self.audit:
            self._audit()
        return False

    # -- blocking stream operations ------------------------------------------------

    def _continue_pending(self, thread: SimThread) -> bool:
        """Try to complete the in-flight op; False means block."""
        pending = thread.pending
        kind = pending[0]
        stream: Stream = pending[1]
        if kind == "write":
            data, offset = pending[2], pending[3]
            pushed = stream.push(data[offset:])
            if pushed:
                offset += pushed
                if stream.read_waiters:
                    self._wake_readers(stream)
            if offset >= len(data):
                thread.pending = None
                thread.resume_value = None
                return True
            thread.pending = ("write", stream, data, offset)
            return False
        if kind == "read":
            if stream.is_empty and not stream.closed:
                return False
            data = stream.pull(pending[2])
            if data and stream.write_waiters:
                self._wake_writers(stream)
            thread.pending = None
            thread.resume_value = data
            return True
        if kind == "readline":
            if stream.has_line() or stream.at_eof:
                line = stream.pull_line()
                if line is None:
                    line = b""
                if line and stream.write_waiters:
                    self._wake_writers(stream)
                thread.pending = None
                thread.resume_value = line
                return True
            if stream.is_full:
                raise RuntimeFault(
                    "readline on %r: line longer than the stream capacity"
                    % stream.name)
            return False
        if kind == "join":
            target: SimThread = pending[1]
            if target.state != DONE:
                return False
            thread.pending = None
            thread.resume_value = target.result
            return True
        raise RuntimeFault("unknown pending op %r" % kind)

    def _block(self, thread: SimThread) -> None:
        pending = thread.pending
        kind = pending[0]
        if kind == "join":
            target: SimThread = pending[1]
            target.join_waiters.append(thread)
            thread.blocked_on = "join %s" % target.name
        elif kind == "write":
            stream: Stream = pending[1]
            stream.write_waiters.append(thread)
            thread.blocked_on = stream.write_label
        else:
            stream = pending[1]
            stream.read_waiters.append(thread)
            thread.blocked_on = stream.read_label
        thread.state = BLOCKED
        thread.blocks += 1
        self.last_suspended = thread
        self.current = None
        if self._tracing:
            if kind == "join":
                op, on = "join", pending[1].name
            else:
                op = "write" if kind == "write" else "read"
                on = pending[1].name or "stream"
            self.events.emit("block", tid=thread.tid, on=on, op=op)

    def _do_close(self, stream: Stream) -> None:
        stream.close()
        if stream.read_waiters:
            self._wake_readers(stream)
        if stream.write_waiters:
            self._wake_writers(stream)

    def _wake_readers(self, stream: Stream) -> None:
        events_on = self._tracing
        for waiter in stream.read_waiters:
            waiter.blocked_on = None
            if events_on:
                self.events.emit("wake", tid=waiter.tid,
                                 on=stream.name or "stream", op="read")
            self.ready.push_woken(waiter)
        del stream.read_waiters[:]

    def _wake_writers(self, stream: Stream) -> None:
        events_on = self._tracing
        for waiter in stream.write_waiters:
            waiter.blocked_on = None
            if events_on:
                self.events.emit("wake", tid=waiter.tid,
                                 on=stream.name or "stream", op="write")
            self.ready.push_woken(waiter)
        del stream.write_waiters[:]
