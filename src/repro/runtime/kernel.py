"""The multi-tasking kernel: trampoline execution + non-preemptive
scheduling over the window simulator.

Every procedure call a thread makes becomes a simulated ``save`` and
every return a ``restore``; blocking stream operations suspend the
thread and context-switch through the window-management scheme.  The
register file is used *functionally*: arguments travel through the
caller's outs into the callee's ins, return values travel back through
the in/out overlap across the restore, and each frame carries a
signature in a local register — so a window-management bug corrupts
application results instead of passing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import make_scheme
from repro.core.invariants import check_invariants
from repro.core.scheme import Scheme
from repro.errors import ReproError
from repro.metrics.counters import Counters
from repro.runtime.batch import (
    EXIT_BLOCKED,
    EXIT_BUDGET,
    EXIT_DONE,
    EXIT_YIELDED,
    resolve_core,
)
from repro.runtime.errors import DeadlockError, LivelockError, RuntimeFault
from repro.runtime.ops import (
    Call,
    CloseStream,
    FlushHint,
    Join,
    Read,
    ReadLine,
    Spawn,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.streams import Stream, StreamClosedError
from repro.runtime.thread import (
    BLOCKED,
    DONE,
    READY,
    RUNNING,
    SimThread,
)
from repro.windows.cpu import WindowCPU
from repro.windows.errors import (
    WindowError,
    WindowGeometryError,
    WindowIntegrityError,
)
from repro.windows.occupancy import FRAME, FREE


@dataclass
class RunResult:
    """Outcome of a completed simulation."""

    counters: Counters
    threads: List[SimThread]
    steps: int
    slackness_samples: List[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.counters.total_cycles

    def result_of(self, name: str) -> Any:
        for t in self.threads:
            if t.name == name:
                return t.result
        raise KeyError(name)

    def thread_results(self) -> Dict[str, Any]:
        return {t.name: t.result for t in self.threads}


class Kernel:
    """Owns the CPU, the scheme, the ready queue and all threads."""

    def __init__(self, n_windows: int = 8, scheme: str = "SP",
                 queue_policy=None, cost_model=None,
                 counters: Optional[Counters] = None,
                 allocation=None, verify_registers: bool = True,
                 scheme_kwargs: Optional[dict] = None,
                 faults=None, audit: bool = False,
                 watchdog: Optional[int] = None,
                 crash_dir=None,
                 crash_config: Optional[dict] = None,
                 core: Optional[str] = None,
                 analyze: bool = False,
                 backend: Optional[str] = None):
        from repro.runtime import backend as backend_mod

        #: execution core: "batched" (run-until-event, the default);
        #: an explicit argument wins over the $REPRO_CORE override
        self.core = resolve_core(core)
        #: effective execution backend ("compiled"/"pure"); precedence
        #: backend= kwarg > $REPRO_BACKEND > auto-detect, with graceful
        #: fallback to pure when repro._fast is not built
        requested = backend_mod.requested_backend(backend)
        self.backend = backend_mod.select_backend(backend)
        self._fast = (backend_mod.load_fast()
                      if self.backend == "compiled" else None)
        if self._fast is not None and (faults is not None or audit
                                       or watchdog):
            # These hooks observe individual steps, so such runs take
            # the step-granular pure loop regardless of backend (the
            # batchable gate below routes them); only an *explicit*
            # compiled request warns about it.
            if requested == "compiled":
                needs = [name for name, on in (
                    ("fault injection", faults is not None),
                    ("invariant audit", audit),
                    ("watchdog", bool(watchdog))) if on]
                backend_mod.warn_step_granular_fallback(
                    " + ".join(needs))
            self.backend = "pure"
            self._fast = None
        self.counters = counters if counters is not None else Counters()
        self.cpu = WindowCPU(n_windows, cost_model, self.counters)
        kwargs = dict(scheme_kwargs or {})
        if isinstance(scheme, Scheme):
            self.scheme = scheme
        elif scheme.upper() == "NS":
            self.scheme = make_scheme("NS", self.cpu, **kwargs)
        else:
            if allocation is not None:
                kwargs.setdefault("allocation", allocation)
            self.scheme = make_scheme(scheme, self.cpu, **kwargs)
        self.ready = ReadyQueue(queue_policy)
        self.threads: List[SimThread] = []
        self.current: Optional[SimThread] = None
        self.last_suspended: Optional[SimThread] = None
        self.verify_registers = verify_registers
        #: the structured trace-event bus (shared with the CPU, the
        #: scheme, the ready queue and every stream); disabled until a
        #: consumer subscribes
        self.events = self.cpu.events
        self.ready.bind_events(self.events)
        #: mirror of ``events.active`` (see EventBus.watch_activity)
        self._tracing = False
        self.events.watch_activity(self._set_tracing)
        self._tracker = None
        self._timeline = None
        #: optional :class:`repro.metrics.telemetry.RunTelemetry`; the
        #: profiler is mirrored into ``_profiler`` so the step loop's
        #: guard is a hoisted-local None check (attach_telemetry)
        self.telemetry = None
        self._profiler = None
        self._running = False
        #: run the static topology check before the first step (run())
        self._analyze = analyze
        self._steps = 0
        #: progress clock: ticks, calls, returns, spawns and completed
        #: blocking operations move it; yield storms do not
        self._progress = 0
        #: optional fault injector (see :mod:`repro.faults`), shared
        #: with the CPU, the scheme's store paths and the ready queue
        self.faults = faults
        if faults is not None:
            faults.attach(self)
        #: run check_invariants after every dispatch, call and return
        self.audit = audit
        self._watchdog = None
        if watchdog:
            from repro.faults.watchdog import Watchdog

            self._watchdog = Watchdog(watchdog)
        #: where crash bundles land (None: no bundles); crash_config is
        #: embedded in the bundle so a replay can rebuild the workload
        self.crash_dir = crash_dir
        self.crash_config = dict(crash_config or {})
        self._flight = None
        if crash_dir is not None:
            from repro.metrics.events import RingRecorder

            self._flight = RingRecorder()
            self.events.subscribe(self._flight)

    def _set_tracing(self, active: bool) -> None:
        self._tracing = active

    # -- observability ------------------------------------------------------

    @property
    def tracker(self):
        """Optional :class:`repro.metrics.behavior.BehaviorTracker`.

        Assigning one subscribes it to the event bus (the legacy
        hand-wired attribute is kept as this alias)."""
        return self._tracker

    @tracker.setter
    def tracker(self, tracker) -> None:
        if self._tracker is not None:
            self.events.unsubscribe(self._tracker)
        self._tracker = tracker
        if tracker is not None:
            self.events.subscribe(tracker)

    @property
    def timeline(self):
        """Optional :class:`repro.metrics.tracing.OccupancyTimeline`,
        subscribed to the event bus when assigned."""
        return self._timeline

    @timeline.setter
    def timeline(self, timeline) -> None:
        if self._timeline is not None:
            self.events.unsubscribe(self._timeline)
        self._timeline = timeline
        if timeline is not None:
            timeline.cpu = self.cpu
            self.events.subscribe(timeline)

    def attach_telemetry(self, telemetry) -> None:
        """Arm aggregate metrics (:mod:`repro.metrics.telemetry`).

        Hands the scheme its per-scheme switch/trap/occupancy
        histograms and arms the cycle-domain sampling profiler; until
        this is called every instrumented site holds ``None`` and the
        hot paths pay a single ``is None`` branch.
        """
        from repro.metrics.telemetry import arm_scheme_histograms

        self.telemetry = telemetry
        arm_scheme_histograms(telemetry, self.scheme,
                              self.cpu.n_windows)
        profiler = telemetry.profiler
        if profiler is not None:
            profiler.bind(self.cpu)
        self._profiler = profiler

    def enable_tracing(self, recorder=None):
        """Subscribe (and return) a TraceRecorder capturing every event."""
        from repro.metrics.events import TraceRecorder

        if recorder is None:
            recorder = TraceRecorder()
        self.events.subscribe(recorder)
        return recorder

    # -- setup ------------------------------------------------------------

    def spawn(self, factory, *args, name: str = "") -> SimThread:
        """Create a thread running ``factory(*args)`` (a generator).

        Before ``run()`` only; running threads use the ``Spawn`` op.
        """
        if self._running:
            raise RuntimeFault(
                "spawn() after run() started; yield Spawn(...) instead")
        return self._spawn(factory, args, name)

    def _spawn(self, factory, args, name: str) -> SimThread:
        thread = SimThread(len(self.threads), name, factory, args)
        self.threads.append(thread)
        self.scheme.register(thread.windows)
        if self._tracing:
            parent = self.current.tid if self.current is not None else None
            self.events.emit("spawn", tid=thread.tid, name=thread.name,
                             parent=parent)
        self.ready.push_new(thread)
        return thread

    def stream(self, capacity: int, name: str = "") -> Stream:
        """Convenience stream constructor (wired to the event bus)."""
        stream = Stream(capacity, name)
        stream.events = self.events
        return stream

    # -- main loop -----------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run every thread to completion; raises on deadlock.

        Any escaping :class:`~repro.errors.ReproError` is enriched with
        crash context (step, cycle, running thread, CWP) and — when
        ``crash_dir`` is set — dumped as a replayable crash bundle whose
        path lands on the exception as ``bundle_path``.
        """
        if self._analyze:
            # opt-in pre-run gate: static stream-topology check over
            # everything spawned so far; a guaranteed deadlock (a
            # stream read but never written or closed) aborts before
            # the first instruction runs
            from repro.analysis.topology import analyze_kernel

            analyze_kernel(self).raise_if_errors("workload topology")
        self._running = True
        try:
            return self._run_to_completion(max_steps)
        except ReproError as exc:
            self._capture_crash(exc)
            raise

    def _run_to_completion(self, max_steps: Optional[int]) -> RunResult:
        # The batched core needs every step hook to be dead: a step
        # budget, the watchdog, fault injection and the invariant audit
        # all observe (or perturb) individual steps, so those
        # configurations run the step-granular compat loop instead —
        # which is also the whole of the "generator" core.  Tracing is
        # re-checked per quantum because a subscriber may attach
        # mid-run.
        batchable = (self.core == "batched" and max_steps is None
                     and self._watchdog is None and self.faults is None
                     and not self.audit)
        fast = self._fast
        while True:
            if self.current is None:
                if not self.ready:
                    blocked = [t for t in self.threads if t.state == BLOCKED]
                    if blocked:
                        raise self._deadlock_error(blocked)
                    break
                self._dispatch(self.ready.pop())
            if batchable and not self._tracing:
                # Runs quanta back-to-back (dispatch included) until
                # everything is done/blocked or tracing comes alive;
                # the loop here re-checks deadlock and tracing.
                if fast is not None:
                    fast.run_batched(self)
                else:
                    self._run_batched()
            else:
                self._run_quantum(max_steps)
            if max_steps is not None and self._steps >= max_steps:
                raise RuntimeFault("step budget of %d exceeded" % max_steps)
        if self._tracing:
            self.events.emit("run_end")
        self.counters.fold_thread_stats(t.windows for t in self.threads)
        return RunResult(self.counters, list(self.threads), self._steps,
                         list(self.ready.slackness_samples))

    # -- failure reporting --------------------------------------------------

    def _deadlock_error(self, blocked: List[SimThread]) -> DeadlockError:
        """Build a DeadlockError naming every wedged thread and what it
        waits for — including the fill state of the stream involved."""
        details = []
        for t in blocked:
            pending = t.pending or (None,)
            kind = pending[0]
            if kind == "join":
                target = pending[1]
                entry = {"thread": t.name, "op": "join", "on": target.name,
                         "detail": "target is %s" % target.state}
            elif kind in ("read", "readline", "write"):
                stream = pending[1]
                if kind == "write":
                    state = "full" if stream.is_full else (
                        "%d/%d bytes buffered"
                        % (len(stream), stream.capacity))
                else:
                    state = "empty" if stream.is_empty else (
                        "%d bytes buffered" % len(stream))
                if stream.closed:
                    state += ", closed"
                entry = {"thread": t.name, "op": kind,
                         "on": stream.name or "stream",
                         "detail": "stream %s (capacity %d)"
                                   % (state, stream.capacity)}
            else:
                entry = {"thread": t.name, "op": kind or "?",
                         "on": t.blocked_on or "?", "detail": ""}
            details.append(entry)
        lines = "; ".join(
            "%s waits to %s %r (%s)" % (d["thread"], d["op"], d["on"],
                                        d["detail"])
            if d["detail"] else
            "%s waits to %s %r" % (d["thread"], d["op"], d["on"])
            for d in details)
        return DeadlockError(
            "deadlock: no ready threads; blocked: %s" % lines,
            blocked=details, threads=len(self.threads),
            blocked_count=len(details))

    def _capture_crash(self, exc: ReproError) -> None:
        """Enrich an escaping error and (optionally) write its bundle."""
        self.counters.fold_thread_stats(t.windows for t in self.threads)
        running = self.current
        exc.with_context(step=self._steps,
                         cycle=self.counters.total_cycles)
        if running is not None:
            exc.with_context(thread=running.name, cwp=self.cpu.wf.cwp)
        if self.faults is not None and self.faults.fired:
            exc.with_context(faults_fired=len(self.faults.fired))
        exc.bundle_path = None
        if self.crash_dir is not None:
            from repro.faults.bundle import write_crash_bundle

            exc.bundle_path = write_crash_bundle(self.crash_dir, exc, self)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, thread: SimThread) -> None:
        out = self.last_suspended
        assert out is not thread, "self-switch should be impossible"
        out_tw = out.windows if out is not None else None
        flush = out.flush_on_switch if out is not None else False
        self.scheme.context_switch(out_tw, thread.windows, flush_out=flush)
        self.last_suspended = None
        self.current = thread
        thread.state = RUNNING
        if not thread.gen_stack:
            thread.start_root()
            if self.verify_registers:
                self.cpu.write_local(0, ("sig", thread.tid, 1))
        if self._tracing:
            self.events.emit("dispatch", tid=thread.tid,
                             depth=thread.windows.depth)
        if self.audit:
            self._audit()

    def _audit(self) -> None:
        """Continuous invariant audit: the full geometry check after
        every dispatch, call and return (expensive; opt-in)."""
        try:
            check_invariants(self.cpu, self.scheme,
                             [t.windows for t in self.threads])
        except WindowError as exc:
            raise exc.with_context(audit=True, step=self._steps,
                                   cycle=self.counters.total_cycles)

    # -- quantum execution ----------------------------------------------------------

    def _run_quantum(self, max_steps: Optional[int]) -> int:
        """Step-granular quantum loop (the "generator" core, and the
        batched core's compat path for configurations that need
        per-step hooks: step budgets, watchdog, faults, audit,
        tracing).  Runs the current thread until it blocks, yields or
        finishes."""
        thread = self.current
        assert thread is not None
        tw = thread.windows
        cpu = self.cpu
        counters = cpu.counters
        verify = self.verify_registers
        watchdog = self._watchdog
        prof = self._profiler
        gen_stack = thread.gen_stack
        try:
            while True:
                self._steps += 1
                if max_steps is not None and self._steps >= max_steps:
                    return EXIT_BUDGET
                if watchdog is not None and watchdog.expired(self._progress,
                                                             self._steps):
                    raise LivelockError(
                        "no progress for %d steps (watchdog max_stall=%d); "
                        "threads: %s" % (
                            watchdog.stalled_for(self._progress, self._steps),
                            watchdog.max_stall,
                            ", ".join("%s=%s" % (t.name, t.state)
                                      for t in self.threads)),
                        max_stall=watchdog.max_stall,
                        progress=self._progress)
                if thread.pending is not None:
                    if not self._continue_pending(thread):
                        self._block(thread)
                        return EXIT_BLOCKED
                    self._progress += 1
                gen = gen_stack[-1]
                try:
                    cmd = gen.send(thread.resume_value)
                except StopIteration as stop:
                    if self._handle_return(thread, getattr(stop, "value", None)):
                        return EXIT_DONE  # thread finished
                    continue
                thread.resume_value = None
                t = type(cmd)
                if t is Tick:
                    counters.compute_cycles += cmd.cycles
                    self._progress += 1
                elif t is Call:
                    self._do_call(thread, cmd)
                elif t is Read:
                    thread.pending = ("read", cmd.stream, cmd.max_bytes)
                elif t is Write:
                    thread.pending = ("write", cmd.stream, cmd.data, 0)
                elif t is ReadLine:
                    thread.pending = ("readline", cmd.stream)
                elif t is CloseStream:
                    self._do_close(cmd.stream)
                elif t is YieldCPU:
                    if self.ready:
                        if self._tracing:
                            self.events.emit("yield", tid=thread.tid)
                        self.ready.push_yielded(thread)
                        self.last_suspended = thread
                        self.current = None
                        return EXIT_YIELDED
                    # Nobody else to run: keep going, no switch, no cost.
                elif t is FlushHint:
                    thread.flush_on_switch = cmd.flush
                elif t is Spawn:
                    thread.resume_value = self._spawn(
                        cmd.factory, cmd.args, cmd.name)
                    self._progress += 1
                elif t is Join:
                    if cmd.thread is thread:
                        raise RuntimeFault(
                            "%s tried to join itself" % thread.name)
                    thread.pending = ("join", cmd.thread)
                else:
                    raise RuntimeFault(
                        "thread %s yielded %r; expected a runtime op"
                        % (thread.name, cmd))
        finally:
            # The profiler samples on quantum boundaries only — the
            # per-step path carries zero profiler code, and a quantum
            # (one thread's uninterrupted run) is the natural unit of
            # cycle attribution.  Stacks are captured where threads
            # block or yield; per-op attribution is derived exactly
            # from the run counters at finalize time.
            if prof is not None:
                prof._cd -= 1
                if prof._cd <= 0:
                    prof._check(thread, None, counters)

    def _run_batched(self) -> None:
        """The run-until-event core: dispatch loop plus batch executor
        fused into one frame.

        Each thread's quantum executes as a straight-line batch of
        steps, returning control only on a batch-exit event — block,
        yield, completion (:mod:`repro.runtime.batch`) — after which
        the next thread is dispatched without leaving this frame, so
        the simulator-invariant locals (register file geometry, WIM,
        occupancy arrays, op classes) hoist once per *run* instead of
        once per step or quantum.

        Bit-identical to the step-granular loop — the differential
        suite enforces it — with the per-step machinery inlined: the
        two window instructions (``WindowCPU.save``/``restore``),
        stream completion, and the counter updates.  Run-global
        counters (steps, progress, compute/call cycles, save/restore
        totals) accumulate in frame locals and fold once in the outer
        ``finally``; per-thread statistics fold at each quantum
        boundary in the inner ``finally``.  Both folds run on
        exceptional exits too, so a window trap escaping mid-batch
        leaves step and cycle counts exactly where the reference core
        would (crash-context identity).  Trap handlers and context
        switches run through the scheme exactly as in the reference
        core; they touch only trap/switch counters, never the
        batch-local ones, so folding late is safe.

        Only entered when every step-granular hook is dead (no step
        budget, watchdog, faults, audit or tracing — see
        ``_run_to_completion``); the profiler and telemetry buffers
        are quantum-granular and folded per batch.
        """
        cpu = self.cpu
        wf = cpu.wf
        regs = wf._regs
        wim = wf._wim
        above = wf._above
        below = wf._below
        in_base = wf._in_base
        out_base = wf._out_base
        wmap = cpu.map
        kinds = wmap._kind
        tids = wmap._tid
        scheme = self.scheme
        ready = self.ready
        counters = cpu.counters
        verify = self.verify_registers
        save_cost = cpu._save_instr_cost
        restore_cost = cpu._restore_instr_cost
        prof = self._profiler
        prof_cd = prof._cd if prof is not None else 0
        handle_overflow = scheme.handle_overflow
        handle_underflow = scheme.handle_underflow
        context_switch = scheme.context_switch
        block = self._block
        wake_readers = self._wake_readers
        wake_writers = self._wake_writers
        do_close = self._do_close
        queue = ready._queue
        popleft = queue.popleft
        queue_extend = queue.extend
        # Plain FIFO with no fault injector attached: a wake is exactly
        # "state = READY, append to the deque" (the push_woken fast
        # path); neither condition can change during a run.  Tracing
        # can, so the wake sites re-check it and fall back.
        fifo_wake = ready._fifo and ready.faults is None
        READY_, BLOCKED_ = READY, BLOCKED
        # op classes as frame locals (one global load each, not per step)
        Tick_, Call_, Read_, Write_ = Tick, Call, Read, Write
        ReadLine_, CloseStream_, YieldCPU_ = ReadLine, CloseStream, YieldCPU
        FlushHint_, Spawn_, Join_ = FlushHint, Spawn, Join
        # -- run-global accumulators, folded once in the outer finally --
        steps = 0                  # -> self._steps
        progress = 0               # -> self._progress
        compute = 0                # -> counters.compute_cycles
        call_cycles = 0            # -> counters.call_cycles
        saves_total = 0            # -> counters.saves
        restores_total = 0         # -> counters.restores
        try:
            while True:            # one iteration per quantum
                thread = self.current
                tw = thread.windows
                gen_stack = thread.gen_stack
                # -- per-quantum accumulators (per-thread statistics) --
                n_saves = 0        # -> tw.stat_saves (== thread.calls)
                n_restores = 0     # -> tw.stat_restores (== thread.returns)
                resume = thread.resume_value
                steps += 1         # the entry iteration (compat parity)
                try:
                    # Entry with an in-flight op (_continue_pending,
                    # inlined): completion shares the step with the
                    # send that follows, as in the compat loop's
                    # pending-resume iteration; a still-blocked op
                    # re-blocks without entering the batch (falling
                    # through to the dispatch below).
                    pending = thread.pending
                    if pending is None:
                        gen = gen_stack[-1]
                    else:
                        gen = None
                        kind = pending[0]
                        stream = pending[1]
                        if kind == "write":
                            data, offset = pending[2], pending[3]
                            # -- Stream.push, inlined (and without the
                            # tail-slice allocation push would need) --
                            if stream.closed:
                                raise StreamClosedError(
                                    "write to closed stream %r"
                                    % (stream.name,))
                            sdata = stream._data
                            pushed = stream.capacity - len(sdata)
                            want = len(data) - offset
                            if pushed:
                                if pushed >= want:
                                    pushed = want
                                    sdata.extend(data[offset:])
                                else:
                                    sdata.extend(
                                        data[offset:offset + pushed])
                                stream.bytes_written += pushed
                                offset += pushed
                                if stream.read_waiters:
                                    if fifo_wake and not self._tracing:
                                        for waiter in stream.read_waiters:
                                            waiter.blocked_on = None
                                            waiter.state = READY_
                                        queue_extend(stream.read_waiters)
                                        del stream.read_waiters[:]
                                    else:
                                        wake_readers(stream)
                            if offset >= len(data):
                                thread.pending = None
                                resume = None
                                progress += 1
                                gen = gen_stack[-1]
                            else:
                                thread.pending = ("write", stream, data,
                                                  offset)
                        elif kind == "read":
                            sdata = stream._data
                            if sdata or stream.closed:
                                # -- Stream.pull, inlined --
                                take = pending[2]
                                avail = len(sdata)
                                if take >= avail:
                                    take = avail
                                    data = bytes(sdata)
                                    del sdata[:]
                                else:
                                    data = bytes(sdata[:take])
                                    del sdata[:take]
                                if take:
                                    stream.bytes_read += take
                                if take and stream.write_waiters:
                                    if fifo_wake and not self._tracing:
                                        for waiter in stream.write_waiters:
                                            waiter.blocked_on = None
                                            waiter.state = READY_
                                        queue_extend(stream.write_waiters)
                                        del stream.write_waiters[:]
                                    else:
                                        wake_writers(stream)
                                thread.pending = None
                                resume = data
                                progress += 1
                                gen = gen_stack[-1]
                        elif kind == "readline":
                            # -- has_line/at_eof/pull_line, inlined --
                            sdata = stream._data
                            idx = sdata.find(b"\n")
                            if idx >= 0:
                                idx += 1
                                line = bytes(sdata[:idx])
                                del sdata[:idx]
                                stream.bytes_read += idx
                            elif stream.closed:
                                line = bytes(sdata)
                                if line:
                                    del sdata[:]
                                    stream.bytes_read += len(line)
                            elif len(sdata) >= stream.capacity:
                                raise RuntimeFault(
                                    "readline on %r: line longer than "
                                    "the stream capacity" % stream.name)
                            else:
                                line = None
                            if line is not None:
                                if line and stream.write_waiters:
                                    if fifo_wake and not self._tracing:
                                        for waiter in stream.write_waiters:
                                            waiter.blocked_on = None
                                            waiter.state = READY_
                                        queue_extend(stream.write_waiters)
                                        del stream.write_waiters[:]
                                    else:
                                        wake_writers(stream)
                                thread.pending = None
                                resume = line
                                progress += 1
                                gen = gen_stack[-1]
                        elif kind == "join":
                            if stream.state == DONE:
                                thread.pending = None
                                resume = stream.result
                                progress += 1
                                gen = gen_stack[-1]
                        else:
                            raise RuntimeFault(
                                "unknown pending op %r" % kind)
                        if gen is None:
                            block(thread)
                    while gen is not None:
                        try:
                            cmd = gen.send(resume)
                        except StopIteration as stop:
                            value = stop.value
                            gen_stack.pop()
                            progress += 1
                            if not gen_stack:
                                if verify and tw.depth != 1:
                                    raise WindowIntegrityError(
                                        "thread %s finished at call "
                                        "depth %d"
                                        % (thread.name, tw.depth))
                                thread.result = value
                                thread.state = DONE
                                scheme.retire(tw)
                                self.current = None
                                for waiter in thread.join_waiters:
                                    waiter.blocked_on = None
                                    ready.push_woken(waiter)
                                del thread.join_waiters[:]
                                break  # EXIT_DONE
                            n_restores += 1
                            cwp = wf.cwp
                            if verify:
                                sig = regs[in_base[cwp] + 8]
                                if sig != ("sig", thread.tid, tw.depth):
                                    raise WindowIntegrityError(
                                        "thread %s frame signature "
                                        "corrupted: %r at depth %d"
                                        % (thread.name, sig, tw.depth),
                                        thread=thread.name,
                                        depth=tw.depth)
                            # The return value travels through the
                            # in/out overlap across the restore
                            # (written before, read after).
                            regs[in_base[cwp]] = value
                            # -- WindowCPU.restore, inlined --
                            if tw.depth <= 1:
                                raise WindowGeometryError(
                                    "thread %d executed restore at "
                                    "depth %d" % (tw.tid, tw.depth))
                            call_cycles += restore_cost
                            target = below[cwp]
                            if wim[target]:
                                # Underflow: the in-place restore
                                # (§3.2); the CWP does not move.
                                handle_underflow(tw)
                            else:
                                kinds[cwp] = FREE
                                tids[cwp] = None
                                wf.cwp = target
                                tw.cwp = target
                                tw.resident -= 1
                                tw.depth -= 1
                            got = regs[out_base[wf.cwp]]
                            if verify and got is not value \
                                    and got != value:
                                raise WindowIntegrityError(
                                    "return value of %s corrupted "
                                    "across restore: %r != %r"
                                    % (thread.name, got, value),
                                    thread=thread.name, depth=tw.depth)
                            resume = got
                            gen = gen_stack[-1]
                            steps += 1
                            continue
                        resume = None
                        t = type(cmd)
                        if t is Tick_:
                            compute += cmd.cycles
                            progress += 1
                        elif t is Call_:
                            progress += 1
                            args = cmd.args
                            cwp = wf.cwp
                            if verify:
                                ob = out_base[cwp]
                                for i, a in enumerate(args[:8]):
                                    regs[ob + i] = a
                            # -- WindowCPU.save, inlined --
                            n_saves += 1
                            call_cycles += save_cost
                            target = above[cwp]
                            if wim[target]:
                                handle_overflow(tw)
                                target = above[wf.cwp]
                                if wim[target]:
                                    raise WindowGeometryError(
                                        "overflow handler left target "
                                        "window %d invalid" % target,
                                        window=target, thread=tw.tid)
                            wf.cwp = target
                            tw.cwp = target
                            tw.resident += 1
                            tw.depth += 1
                            kinds[target] = FRAME
                            tids[target] = tw.tid
                            if verify:
                                ib = in_base[target]
                                for i, a in enumerate(args[:8]):
                                    got = regs[ib + i]
                                    if got is not a and got != a:
                                        raise WindowIntegrityError(
                                            "argument %d of %s "
                                            "corrupted across save: "
                                            "%r != %r"
                                            % (i, thread.name, got, a),
                                            thread=thread.name,
                                            argument=i, depth=tw.depth)
                                regs[ib + 8] = ("sig", thread.tid,
                                                tw.depth)
                            gen = cmd.factory(*args)
                            gen_stack.append(gen)
                        elif t is Read_:
                            stream = cmd.stream
                            steps += 1  # the attempt iteration
                            sdata = stream._data
                            if sdata or stream.closed:
                                # -- Stream.pull, inlined --
                                take = cmd.max_bytes
                                avail = len(sdata)
                                if take >= avail:
                                    take = avail
                                    data = bytes(sdata)
                                    del sdata[:]
                                else:
                                    data = bytes(sdata[:take])
                                    del sdata[:take]
                                if take:
                                    stream.bytes_read += take
                                    if stream.write_waiters:
                                        if fifo_wake \
                                                and not self._tracing:
                                            for waiter in \
                                                    stream.write_waiters:
                                                waiter.blocked_on = None
                                                waiter.state = READY_
                                            queue_extend(
                                                stream.write_waiters)
                                            del stream.write_waiters[:]
                                        else:
                                            wake_writers(stream)
                                progress += 1
                                resume = data
                                # completion shares the next send's step
                                continue
                            # -- _block, inlined --
                            thread.pending = ("read", stream,
                                              cmd.max_bytes)
                            stream.read_waiters.append(thread)
                            thread.blocked_on = stream.read_label
                            thread.state = BLOCKED_
                            thread.blocks += 1
                            self.last_suspended = thread
                            self.current = None
                            if self._tracing:
                                self.events.emit(
                                    "block", tid=thread.tid,
                                    on=stream.name or "stream", op="read")
                            break  # EXIT_BLOCKED
                        elif t is Write_:
                            stream = cmd.stream
                            data = cmd.data
                            steps += 1
                            # -- Stream.push, inlined --
                            if stream.closed:
                                raise StreamClosedError(
                                    "write to closed stream %r"
                                    % (stream.name,))
                            sdata = stream._data
                            pushed = stream.capacity - len(sdata)
                            want = len(data)
                            if pushed >= want:
                                pushed = want
                                sdata.extend(data)
                            elif pushed:
                                sdata.extend(data[:pushed])
                            if pushed:
                                stream.bytes_written += pushed
                                if stream.read_waiters:
                                    if fifo_wake and not self._tracing:
                                        for waiter in \
                                                stream.read_waiters:
                                            waiter.blocked_on = None
                                            waiter.state = READY_
                                        queue_extend(stream.read_waiters)
                                        del stream.read_waiters[:]
                                    else:
                                        wake_readers(stream)
                            if pushed >= want:
                                progress += 1
                                continue
                            # -- _block, inlined --
                            thread.pending = ("write", stream, data,
                                              pushed)
                            stream.write_waiters.append(thread)
                            thread.blocked_on = stream.write_label
                            thread.state = BLOCKED_
                            thread.blocks += 1
                            self.last_suspended = thread
                            self.current = None
                            if self._tracing:
                                self.events.emit(
                                    "block", tid=thread.tid,
                                    on=stream.name or "stream",
                                    op="write")
                            break  # EXIT_BLOCKED
                        elif t is ReadLine_:
                            stream = cmd.stream
                            steps += 1
                            # -- has_line/at_eof/pull_line, inlined --
                            sdata = stream._data
                            idx = sdata.find(b"\n")
                            if idx >= 0:
                                idx += 1
                                line = bytes(sdata[:idx])
                                del sdata[:idx]
                                stream.bytes_read += idx
                            elif stream.closed:
                                line = bytes(sdata)
                                if line:
                                    del sdata[:]
                                    stream.bytes_read += len(line)
                            else:
                                if len(sdata) >= stream.capacity:
                                    raise RuntimeFault(
                                        "readline on %r: line longer "
                                        "than the stream capacity"
                                        % stream.name)
                                # -- _block, inlined --
                                thread.pending = ("readline", stream)
                                stream.read_waiters.append(thread)
                                thread.blocked_on = stream.read_label
                                thread.state = BLOCKED_
                                thread.blocks += 1
                                self.last_suspended = thread
                                self.current = None
                                if self._tracing:
                                    self.events.emit(
                                        "block", tid=thread.tid,
                                        on=stream.name or "stream",
                                        op="read")
                                break  # EXIT_BLOCKED
                            if line and stream.write_waiters:
                                if fifo_wake and not self._tracing:
                                    for waiter in stream.write_waiters:
                                        waiter.blocked_on = None
                                        waiter.state = READY_
                                    queue_extend(stream.write_waiters)
                                    del stream.write_waiters[:]
                                else:
                                    wake_writers(stream)
                            progress += 1
                            resume = line
                            continue
                        elif t is CloseStream_:
                            do_close(cmd.stream)
                        elif t is YieldCPU_:
                            if ready:
                                ready.push_yielded(thread)
                                self.last_suspended = thread
                                self.current = None
                                break  # EXIT_YIELDED
                            # Nobody else runnable: keep going, no
                            # switch, no cost.
                        elif t is FlushHint_:
                            thread.flush_on_switch = cmd.flush
                        elif t is Spawn_:
                            resume = self._spawn(cmd.factory, cmd.args,
                                                 cmd.name)
                            progress += 1
                        elif t is Join_:
                            target_t = cmd.thread
                            if target_t is thread:
                                raise RuntimeFault(
                                    "%s tried to join itself"
                                    % thread.name)
                            steps += 1
                            if target_t.state == DONE:
                                progress += 1
                                resume = target_t.result
                                continue
                            # -- _block, inlined --
                            thread.pending = ("join", target_t)
                            target_t.join_waiters.append(thread)
                            thread.blocked_on = "join %s" % target_t.name
                            thread.state = BLOCKED_
                            thread.blocks += 1
                            self.last_suspended = thread
                            self.current = None
                            if self._tracing:
                                self.events.emit(
                                    "block", tid=thread.tid,
                                    on=target_t.name, op="join")
                            break  # EXIT_BLOCKED
                        else:
                            raise RuntimeFault(
                                "thread %s yielded %r; expected a "
                                "runtime op" % (thread.name, cmd))
                        steps += 1
                finally:
                    # Quantum boundary: fold the per-thread statistics
                    # (the run-global accumulators keep accumulating).
                    thread.resume_value = resume
                    if n_saves:
                        saves_total += n_saves
                        tw.stat_saves += n_saves
                        thread.calls += n_saves
                    if n_restores:
                        restores_total += n_restores
                        tw.stat_restores += n_restores
                        thread.returns += n_restores
                    if prof is not None:
                        prof_cd -= 1
                        if prof_cd <= 0:
                            # The profiler reads counters.total_cycles,
                            # so the cycle accumulators fold before the
                            # sample (only on expiry, not per quantum).
                            if compute:
                                counters.compute_cycles += compute
                                compute = 0
                            if call_cycles:
                                counters.call_cycles += call_cycles
                                call_cycles = 0
                            prof._check(thread, None, counters)
                            prof_cd = prof._cd
                # Dispatch the next thread without leaving the frame.
                if self._tracing:
                    return  # a subscriber attached mid-run: compat loop
                if not queue:
                    return  # all done, or deadlock (outer loop decides)
                # _dispatch, inlined minus the trace emit (tracing was
                # just checked, and it can only flip inside a quantum)
                if ready.sample_slackness:
                    ready.slackness_samples.append(len(queue) - 1)
                nxt = popleft()
                out = self.last_suspended
                assert out is not nxt, "self-switch should be impossible"
                if out is not None:
                    context_switch(out.windows, nxt.windows,
                                   flush_out=out.flush_on_switch)
                else:
                    context_switch(None, nxt.windows, flush_out=False)
                self.last_suspended = None
                self.current = nxt
                nxt.state = RUNNING
                if not nxt.gen_stack:
                    nxt.start_root()
                    if verify:
                        cpu.write_local(0, ("sig", nxt.tid, 1))
        finally:
            self._steps += steps
            self._progress += progress
            if compute:
                counters.compute_cycles += compute
            if call_cycles:
                counters.call_cycles += call_cycles
            if saves_total:
                counters.saves += saves_total
            if restores_total:
                counters.restores += restores_total
            if prof is not None:
                prof._cd = prof_cd

    # -- call / return ----------------------------------------------------------

    def _do_call(self, thread: SimThread, cmd: Call) -> None:
        thread.calls += 1
        self._progress += 1
        cpu = self.cpu
        tw = thread.windows
        args = cmd.args
        if self.verify_registers:
            for i, a in enumerate(args[:8]):
                cpu.write_out(i, a)
        cpu.save(tw)
        if self.verify_registers:
            for i, a in enumerate(args[:8]):
                got = cpu.read_in(i)
                if got is not a and got != a:
                    raise WindowIntegrityError(
                        "argument %d of %s corrupted across save: %r != %r"
                        % (i, thread.name, got, a),
                        thread=thread.name, argument=i, depth=tw.depth)
            cpu.write_local(0, ("sig", thread.tid, tw.depth))
        if self.audit:
            self._audit()
        thread.gen_stack.append(cmd.factory(*args))
        thread.resume_value = None

    def _handle_return(self, thread: SimThread, value: Any) -> bool:
        """Pop a finished procedure; True when the thread is done."""
        thread.gen_stack.pop()
        self._progress += 1
        tw = thread.windows
        cpu = self.cpu
        if not thread.gen_stack:
            if self.verify_registers and tw.depth != 1:
                raise WindowIntegrityError(
                    "thread %s finished at call depth %d"
                    % (thread.name, tw.depth))
            thread.result = value
            thread.state = DONE
            self.scheme.retire(tw)
            self.current = None
            events_on = self._tracing
            if events_on:
                self.events.emit("retire", tid=thread.tid,
                                 name=thread.name)
            for waiter in thread.join_waiters:
                waiter.blocked_on = None
                if events_on:
                    self.events.emit("wake", tid=waiter.tid,
                                     on=thread.name, op="join")
                self.ready.push_woken(waiter)
            del thread.join_waiters[:]
            return True
        thread.returns += 1
        if self.verify_registers:
            sig = cpu.read_local(0)
            if sig != ("sig", thread.tid, tw.depth):
                raise WindowIntegrityError(
                    "thread %s frame signature corrupted: %r at depth %d"
                    % (thread.name, sig, tw.depth),
                    thread=thread.name, depth=tw.depth)
        wf = cpu.wf
        wf._regs[wf._in_base[wf.cwp]] = value
        cpu.restore(tw)
        got = wf._regs[wf._out_base[wf.cwp]]
        if self.verify_registers and got is not value and got != value:
            raise WindowIntegrityError(
                "return value of %s corrupted across restore: %r != %r"
                % (thread.name, got, value),
                thread=thread.name, depth=tw.depth)
        thread.resume_value = got
        if self.audit:
            self._audit()
        return False

    # -- blocking stream operations ------------------------------------------------

    def _continue_pending(self, thread: SimThread) -> bool:
        """Try to complete the in-flight op; False means block."""
        pending = thread.pending
        kind = pending[0]
        stream: Stream = pending[1]
        if kind == "write":
            data, offset = pending[2], pending[3]
            pushed = stream.push(data[offset:])
            if pushed:
                offset += pushed
                if stream.read_waiters:
                    self._wake_readers(stream)
            if offset >= len(data):
                thread.pending = None
                thread.resume_value = None
                return True
            thread.pending = ("write", stream, data, offset)
            return False
        if kind == "read":
            if stream.is_empty and not stream.closed:
                return False
            data = stream.pull(pending[2])
            if data and stream.write_waiters:
                self._wake_writers(stream)
            thread.pending = None
            thread.resume_value = data
            return True
        if kind == "readline":
            if stream.has_line() or stream.at_eof:
                line = stream.pull_line()
                if line is None:
                    line = b""
                if line and stream.write_waiters:
                    self._wake_writers(stream)
                thread.pending = None
                thread.resume_value = line
                return True
            if stream.is_full:
                raise RuntimeFault(
                    "readline on %r: line longer than the stream capacity"
                    % stream.name)
            return False
        if kind == "join":
            target: SimThread = pending[1]
            if target.state != DONE:
                return False
            thread.pending = None
            thread.resume_value = target.result
            return True
        raise RuntimeFault("unknown pending op %r" % kind)

    def _block(self, thread: SimThread) -> None:
        pending = thread.pending
        kind = pending[0]
        if kind == "join":
            target: SimThread = pending[1]
            target.join_waiters.append(thread)
            thread.blocked_on = "join %s" % target.name
        elif kind == "write":
            stream: Stream = pending[1]
            stream.write_waiters.append(thread)
            thread.blocked_on = stream.write_label
        else:
            stream = pending[1]
            stream.read_waiters.append(thread)
            thread.blocked_on = stream.read_label
        thread.state = BLOCKED
        thread.blocks += 1
        self.last_suspended = thread
        self.current = None
        if self._tracing:
            if kind == "join":
                op, on = "join", pending[1].name
            else:
                op = "write" if kind == "write" else "read"
                on = pending[1].name or "stream"
            self.events.emit("block", tid=thread.tid, on=on, op=op)

    def _do_close(self, stream: Stream) -> None:
        stream.close()
        if stream.read_waiters:
            self._wake_readers(stream)
        if stream.write_waiters:
            self._wake_writers(stream)

    def _wake_readers(self, stream: Stream) -> None:
        events_on = self._tracing
        for waiter in stream.read_waiters:
            waiter.blocked_on = None
            if events_on:
                self.events.emit("wake", tid=waiter.tid,
                                 on=stream.name or "stream", op="read")
            self.ready.push_woken(waiter)
        del stream.read_waiters[:]

    def _wake_writers(self, stream: Stream) -> None:
        events_on = self._tracing
        for waiter in stream.write_waiters:
            waiter.blocked_on = None
            if events_on:
                self.events.emit("wake", tid=waiter.tid,
                                 on=stream.name or "stream", op="write")
            self.ready.push_woken(waiter)
        del stream.write_waiters[:]
