"""Batch-exit reason codes and core selection for the execution cores.

The kernel runs each quantum through one of two execution cores:

* ``"batched"`` — the run-until-event core: the current thread executes
  a straight-line batch of steps inside one Python frame
  (:meth:`repro.runtime.kernel.Kernel._run_batched`, which fuses the
  dispatch loop and the batch executor into one frame), leaving the
  batch only on a *batch-exit event* — block, yield, completion — with
  cycle accounting and per-thread statistics folded once per batch
  instead of once per step;
* ``"generator"`` — the reference step-granular trampoline
  (:meth:`repro.runtime.kernel.Kernel._run_quantum`), kept for one
  release behind this switch so the differential harness can A/B the
  two cores, and still used by the batched core itself whenever a
  configuration needs step granularity (fault injection, watchdog,
  audit, tracing, step budgets).

Both cores are required to be *bit-identical*: same counters, same
per-thread statistics, same trace-event sequences, same step counts
(``tests/core/test_batched_vs_trampoline.py`` enforces this).

The exit codes below name why a batch ended.  They replace the implicit
"one yielded op per step" protocol at quantum granularity: inside a
batch the runtime ops are consumed inline, and only the batch boundary
is reported.  The ISA machine (:mod:`repro.isa.machine`) shares the
same codes for its fetch-loop batches.
"""

from __future__ import annotations

import os

#: thread blocked on a stream or a join — it left the CPU and sits on
#: the waiter list of whatever it blocked on
EXIT_BLOCKED = 1
#: thread executed ``YieldCPU`` with other runnable threads queued
EXIT_YIELDED = 2
#: thread's root procedure returned — the thread retired
EXIT_DONE = 3
#: the caller-imposed step/instruction budget expired mid-batch
EXIT_BUDGET = 4

EXIT_NAMES = {
    EXIT_BLOCKED: "blocked",
    EXIT_YIELDED: "yielded",
    EXIT_DONE: "done",
    EXIT_BUDGET: "budget",
}

#: the two execution cores (order: default first)
CORES = ("batched", "generator")

#: environment override consulted when no explicit ``core=`` is given —
#: how CI A/Bs a whole run (benchmarks, sweeps) without plumbing
ENV_CORE = "REPRO_CORE"


def resolve_core(core=None) -> str:
    """Validate a ``core=`` choice, applying the env-var default.

    An explicit argument wins; otherwise ``$REPRO_CORE`` is consulted,
    and the batched core is the default.
    """
    if core is None:
        core = os.environ.get(ENV_CORE) or CORES[0]
    if core not in CORES:
        raise ValueError(
            "unknown execution core %r; expected one of %s"
            % (core, "/".join(CORES)))
    return core
