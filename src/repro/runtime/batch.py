"""Batch-exit reason codes and core selection for the execution core.

The kernel runs each quantum through the ``"batched"`` run-until-event
core: the current thread executes a straight-line batch of steps inside
one Python frame (:meth:`repro.runtime.kernel.Kernel._run_batched`,
which fuses the dispatch loop and the batch executor into one frame),
leaving the batch only on a *batch-exit event* — block, yield,
completion — with cycle accounting and per-thread statistics folded
once per batch instead of once per step.

The step-granular generator trampoline
(:meth:`repro.runtime.kernel.Kernel._run_quantum`) is no longer a
public core choice: it survives as the batched core's compat path for
configurations that need per-step hooks (fault injection, watchdog,
audit, tracing, step budgets) and as the differential harness's
reference loop (forced through ``tests/support/trampoline.py``, never
through ``core=``).  Crash bundles recorded on the retired core still
replay on it — :func:`repro.faults.workloads.run_workload` maps the
recorded name to the reference loop.

Both loops are required to be *bit-identical*: same counters, same
per-thread statistics, same trace-event sequences, same step counts
(``tests/core/test_batched_vs_trampoline.py`` enforces this).

The exit codes below name why a batch ended.  They replace the implicit
"one yielded op per step" protocol at quantum granularity: inside a
batch the runtime ops are consumed inline, and only the batch boundary
is reported.  The ISA machine (:mod:`repro.isa.machine`) shares the
same codes for its fetch-loop batches.
"""

from __future__ import annotations

import os

#: thread blocked on a stream or a join — it left the CPU and sits on
#: the waiter list of whatever it blocked on
EXIT_BLOCKED = 1
#: thread executed ``YieldCPU`` with other runnable threads queued
EXIT_YIELDED = 2
#: thread's root procedure returned — the thread retired
EXIT_DONE = 3
#: the caller-imposed step/instruction budget expired mid-batch
EXIT_BUDGET = 4

EXIT_NAMES = {
    EXIT_BLOCKED: "blocked",
    EXIT_YIELDED: "yielded",
    EXIT_DONE: "done",
    EXIT_BUDGET: "budget",
}

#: the public execution cores (order: default first)
CORES = ("batched",)

#: the retired step-granular core's name — still recognized (with a
#: pointer error from :func:`resolve_core`, and a replay mapping in
#: ``repro.faults.workloads``) but no longer constructible via ``core=``
RETIRED_GENERATOR_CORE = "generator"

#: environment override consulted when no explicit ``core=`` is given —
#: how CI A/Bs a whole run (benchmarks, sweeps) without plumbing
ENV_CORE = "REPRO_CORE"


def resolve_core(core=None) -> str:
    """Validate a ``core=`` choice, applying the env-var default.

    An explicit argument wins; otherwise ``$REPRO_CORE`` is consulted,
    and the batched core is the default.  The retired ``"generator"``
    core gets a pointer error rather than the generic unknown-core one.
    """
    if core is None:
        core = os.environ.get(ENV_CORE) or CORES[0]
    if core == RETIRED_GENERATOR_CORE:
        raise ValueError(
            'the step-granular "generator" core was retired from the '
            'public runtime; the batched core is bit-identical (the '
            'reference trampoline remains available to the test suite '
            'via tests/support/trampoline.py, and recorded crash '
            'bundles still replay on it)')
    if core not in CORES:
        raise ValueError(
            "unknown execution core %r; expected one of %s"
            % (core, "/".join(CORES)))
    return core
