"""The ready queue: FIFO base order plus a pluggable enqueue policy.

The paper's scheduling is non-preemptive FIFO (§4.5); the working-set
variant (§4.6) differs only in letting an awoken thread with resident
windows enter at the front.  Both policies live in
:mod:`repro.core.working_set`; this class just applies them.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.working_set import FIFOPolicy, FRONT, QueuePolicy
from repro.runtime.thread import READY, SimThread


class ReadyQueue:
    """Deque of ready threads with policy-driven insertion."""

    def __init__(self, policy: Optional[QueuePolicy] = None):
        self.policy = policy if policy is not None else FIFOPolicy()
        self._queue: deque = deque()
        #: parallel-slackness samples (§5): queue length at each pop
        self.slackness_samples = []
        self.sample_slackness = False
        #: trace-event bus (wired by the kernel; None when standalone)
        self.events = None
        #: optional fault injector; its enqueue hook may perturb order
        self.faults = None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def push_new(self, thread: SimThread) -> None:
        """A freshly spawned thread always enters at the back."""
        thread.state = READY
        self._queue.append(thread)
        self._note_enqueue(thread, "new", "back")

    def push_woken(self, thread: SimThread) -> None:
        """A thread awoken by another thread; placement is the policy's
        single decision point (§4.6)."""
        thread.state = READY
        if self.policy.enqueue_position(thread.windows) == FRONT:
            self._queue.appendleft(thread)
            self._note_enqueue(thread, "woken", "front")
        else:
            self._queue.append(thread)
            self._note_enqueue(thread, "woken", "back")

    def push_yielded(self, thread: SimThread) -> None:
        """A thread that voluntarily yielded the CPU."""
        thread.state = READY
        if self.policy.yield_position(thread.windows) == FRONT:
            self._queue.appendleft(thread)
            self._note_enqueue(thread, "yielded", "front")
        else:
            self._queue.append(thread)
            self._note_enqueue(thread, "yielded", "back")

    def _note_enqueue(self, thread: SimThread, reason: str,
                      position: str) -> None:
        events = self.events
        if events is not None and events.active:
            events.emit("enqueue", tid=thread.tid, reason=reason,
                        position=position, depth=len(self._queue))
        if self.faults is not None:
            self.faults.on_enqueue(self)

    def pop(self) -> SimThread:
        if self.sample_slackness:
            self.slackness_samples.append(len(self._queue) - 1)
        return self._queue.popleft()

    def remove(self, thread: SimThread) -> None:
        self._queue.remove(thread)

    def peek_all(self):
        return list(self._queue)
