"""The ready queue: FIFO base order plus a pluggable enqueue policy.

The paper's scheduling is non-preemptive FIFO (§4.5); the working-set
variant (§4.6) differs only in letting an awoken thread with resident
windows enter at the front.  Both policies live in
:mod:`repro.core.working_set`; this class just applies them.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.working_set import FIFOPolicy, FRONT, QueuePolicy
from repro.runtime.thread import READY, SimThread


class ReadyQueue:
    """Deque of ready threads with policy-driven insertion."""

    __slots__ = ("policy", "_queue", "slackness_samples",
                 "sample_slackness", "events", "faults", "_tracing",
                 "_fifo")

    def __init__(self, policy: Optional[QueuePolicy] = None):
        self.policy = policy if policy is not None else FIFOPolicy()
        #: plain FIFO never front-enqueues, so the per-wake policy call
        #: can be skipped entirely on the default path
        self._fifo = type(self.policy) is FIFOPolicy
        self._queue: deque = deque()
        #: parallel-slackness samples (§5): queue length at each pop
        self.slackness_samples = []
        self.sample_slackness = False
        #: trace-event bus (wired by the kernel; None when standalone)
        self.events = None
        #: mirror of ``events.active`` (see EventBus.watch_activity)
        self._tracing = False
        #: optional fault injector with enqueue specs pending; attached
        #: by FaultInjector.attach only when the plan targets this site
        self.faults = None

    def bind_events(self, events) -> None:
        """Wire the trace bus (and keep ``_tracing`` mirrored)."""
        self.events = events
        events.watch_activity(self._set_tracing)

    def _set_tracing(self, active: bool) -> None:
        self._tracing = active

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def push_new(self, thread: SimThread) -> None:
        """A freshly spawned thread always enters at the back."""
        thread.state = READY
        self._queue.append(thread)
        if self._tracing or self.faults is not None:
            self._note_enqueue(thread, "new", "back")

    def push_woken(self, thread: SimThread) -> None:
        """A thread awoken by another thread; placement is the policy's
        single decision point (§4.6)."""
        thread.state = READY
        if self._fifo or \
                self.policy.enqueue_position(thread.windows) != FRONT:
            self._queue.append(thread)
            position = "back"
        else:
            self._queue.appendleft(thread)
            position = "front"
        if self._tracing or self.faults is not None:
            self._note_enqueue(thread, "woken", position)

    def push_yielded(self, thread: SimThread) -> None:
        """A thread that voluntarily yielded the CPU."""
        thread.state = READY
        if self._fifo or \
                self.policy.yield_position(thread.windows) != FRONT:
            self._queue.append(thread)
            position = "back"
        else:
            self._queue.appendleft(thread)
            position = "front"
        if self._tracing or self.faults is not None:
            self._note_enqueue(thread, "yielded", position)

    def _note_enqueue(self, thread: SimThread, reason: str,
                      position: str) -> None:
        if self._tracing:
            self.events.emit("enqueue", tid=thread.tid, reason=reason,
                             position=position, depth=len(self._queue))
        faults = self.faults
        if faults is not None:
            faults.on_enqueue(self)

    def pop(self) -> SimThread:
        if self.sample_slackness:
            self.slackness_samples.append(len(self._queue) - 1)
        return self._queue.popleft()

    def remove(self, thread: SimThread) -> None:
        self._queue.remove(thread)

    def peek_all(self):
        return list(self._queue)
