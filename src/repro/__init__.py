"""repro — Multiple Threads in Cyclic Register Windows (ISCA 1993).

A faithful Python reproduction of Hidaka, Koike & Tanaka's window-
management algorithm, its SNP/SP sharing schemes and NS baseline, the
working-set scheduling policy, and the paper's full evaluation (the
multi-threaded spell checker, Tables 1-2, Figures 11-15).

Quickstart::

    from repro import Kernel, Tick, Call

    def leaf(n):
        yield Tick(5)
        return n * n

    def root():
        total = 0
        for i in range(4):
            total += (yield Call(leaf, i))
        return total

    kernel = Kernel(n_windows=8, scheme="SP")
    kernel.spawn(root, name="main")
    result = kernel.run()
    print(result.result_of("main"), result.total_cycles)
"""

from repro.errors import ReproError, TransientError
from repro.core import (
    CostModel,
    FIFOPolicy,
    FreeSearchAllocation,
    LRUBottomAllocation,
    NSScheme,
    PAPER_TABLE2,
    SCHEMES,
    SimpleAllocation,
    SNPScheme,
    SPScheme,
    WorkingSetPolicy,
    make_scheme,
)
from repro.metrics.counters import Counters
from repro.metrics.events import EventBus, TraceEvent, TraceRecorder
from repro.metrics.perfetto import PerfettoExporter
from repro.metrics.report import build_run_report
from repro.runtime import (
    Call,
    CloseStream,
    DeadlockError,
    FlushHint,
    Join,
    Kernel,
    LivelockError,
    Read,
    ReadLine,
    RunResult,
    Spawn,
    Stream,
    Tick,
    Write,
    YieldCPU,
)
from repro.windows import WindowCPU, WindowFile

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FIFOPolicy",
    "FreeSearchAllocation",
    "LRUBottomAllocation",
    "NSScheme",
    "PAPER_TABLE2",
    "SCHEMES",
    "SimpleAllocation",
    "SNPScheme",
    "SPScheme",
    "WorkingSetPolicy",
    "make_scheme",
    "Counters",
    "EventBus",
    "TraceEvent",
    "TraceRecorder",
    "PerfettoExporter",
    "build_run_report",
    "ReproError",
    "TransientError",
    "Call",
    "CloseStream",
    "DeadlockError",
    "FlushHint",
    "Kernel",
    "LivelockError",
    "Read",
    "ReadLine",
    "RunResult",
    "Stream",
    "Tick",
    "Write",
    "YieldCPU",
    "WindowCPU",
    "WindowFile",
    "__version__",
]
